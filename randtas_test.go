package randtas

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

var allAlgorithms = []Algorithm{
	Combined, LogStar, Sifting, AdaptiveSifting, RatRace, AGTV,
}

// runConcurrentTAS launches k real goroutines against one TAS object and
// returns their results.
func runConcurrentTAS(t *testing.T, algo Algorithm, n, k int, seed int64) []int {
	t.Helper()
	obj, err := NewTAS(Options{N: n, Algorithm: algo, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rets := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(id int, p *TASProc) {
			defer wg.Done()
			rets[id] = p.TAS()
		}(i, obj.Proc(i))
	}
	wg.Wait()
	return rets
}

// TestTASExactlyOneWinner is the headline correctness property on the
// real backend, across all algorithms, with the race detector able to
// validate the memory discipline.
func TestTASExactlyOneWinner(t *testing.T) {
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			for _, k := range []int{1, 2, 8, 32} {
				for seed := int64(1); seed <= 8; seed++ {
					rets := runConcurrentTAS(t, algo, 32, k, seed)
					zeros := 0
					for _, r := range rets {
						if r == 0 {
							zeros++
						}
					}
					if zeros != 1 {
						t.Fatalf("k=%d seed=%d: %d winners, want 1", k, seed, zeros)
					}
				}
			}
		})
	}
}

// TestRatRaceOriginalSmall exercises the cubic-space baseline at a size
// where its footprint is tolerable.
func TestRatRaceOriginalSmall(t *testing.T) {
	rets := runConcurrentTAS(t, RatRaceOriginal, 8, 8, 5)
	zeros := 0
	for _, r := range rets {
		if r == 0 {
			zeros++
		}
	}
	if zeros != 1 {
		t.Fatalf("%d winners, want 1", zeros)
	}
}

// TestLeaderElection mirrors the TAS test through the Elect API.
func TestLeaderElection(t *testing.T) {
	le, err := NewLeaderElection(Options{N: 16, Algorithm: Combined, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	won := make([]bool, 16)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int, p *Proc) {
			defer wg.Done()
			won[id] = p.Elect()
		}(i, le.Proc(i))
	}
	wg.Wait()
	winners := 0
	for _, w := range won {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners, want 1", winners)
	}
}

// TestSpaceFootprints checks the register-count separation on the real
// backend too.
func TestSpaceFootprints(t *testing.T) {
	regs := func(algo Algorithm, n int) int {
		obj, err := NewTAS(Options{N: n, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		return obj.Registers()
	}
	se := regs(RatRace, 64)
	orig := regs(RatRaceOriginal, 64)
	if orig < 20*se {
		t.Errorf("original RatRace (%d regs) vs space-efficient (%d): separation too small", orig, se)
	}
	if lin := regs(LogStar, 1024); lin > 40*1024 {
		t.Errorf("log* TAS uses %d registers at n=1024, want O(n)", lin)
	}
}

// TestReadSemantics: Read flips to 1 after losers complete.
func TestReadSemantics(t *testing.T) {
	obj, err := NewTAS(Options{N: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Proc(3).Read(); got != 0 {
		t.Fatalf("Read before TAS = %d", got)
	}
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(p *TASProc) {
				defer wg.Done()
				p.TAS()
			}(obj.Proc(i))
		}
		wg.Wait()
	}()
	<-runDone
	// Three completed TAS calls: at least two losers have written done.
	if got := obj.Proc(3).Read(); got != 1 {
		t.Fatalf("Read after TAS completions = %d, want 1", got)
	}
}

// TestOneShotGuard documents the misuse contract.
func TestOneShotGuard(t *testing.T) {
	obj, err := NewTAS(Options{N: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := obj.Proc(0)
	p.TAS()
	defer func() {
		if recover() == nil {
			t.Fatal("second TAS on one proc did not panic")
		}
	}()
	p.TAS()
}

// TestInvalidOptions covers constructor validation.
func TestInvalidOptions(t *testing.T) {
	if _, err := NewTAS(Options{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewLeaderElection(Options{N: -3}); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := NewTAS(Options{N: 2, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestDeterministicSeeds: a fixed seed fixes the winner under sequential
// execution.
func TestDeterministicSeeds(t *testing.T) {
	run := func() int {
		obj, err := NewTAS(Options{N: 4, Algorithm: LogStar, Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		winner := -1
		for i := 0; i < 4; i++ { // strictly sequential
			if obj.Proc(i).TAS() == 0 {
				winner = i
			}
		}
		return winner
	}
	if a, b := run(), run(); a != b {
		t.Errorf("winners differ across identical runs: %d vs %d", a, b)
	}
}

// TestStepsReported: the steps counter moves and stays modest.
func TestStepsReported(t *testing.T) {
	obj, err := NewTAS(Options{N: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p := obj.Proc(0)
	p.TAS()
	if p.Steps() < 1 || p.Steps() > 200 {
		t.Errorf("winner took %d steps", p.Steps())
	}
}

// TestConcurrentStress is the real-contention workout for the concurrent
// backend: many goroutines hammer one TAS object per trial across every
// algorithm, with a start barrier so attempts genuinely overlap. It
// asserts the one-winner property and that per-proc Steps() accounting is
// monotone and sane. Run with -race to validate the memory discipline.
func TestConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("contention stress is slow under -race")
	}
	const k = 64
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 5; seed++ {
				obj, err := NewTAS(Options{N: k, Algorithm: algo, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				start := make(chan struct{})
				var (
					wg      sync.WaitGroup
					winners int32
					steps   [k]int
				)
				for i := 0; i < k; i++ {
					wg.Add(1)
					go func(id int, p *TASProc) {
						defer wg.Done()
						if p.Steps() != 0 {
							t.Errorf("proc %d: nonzero steps before TAS", id)
						}
						<-start
						r := p.TAS()
						mid := p.Steps()
						if r == 0 {
							atomic.AddInt32(&winners, 1)
						}
						if mid < 1 {
							t.Errorf("proc %d: TAS took %d steps", id, mid)
						}
						// Read costs exactly one step: monotone accounting.
						p.Read()
						if after := p.Steps(); after != mid+1 {
							t.Errorf("proc %d: steps went %d -> %d across one Read", id, mid, after)
						}
						steps[id] = p.Steps()
					}(i, obj.Proc(i))
				}
				close(start)
				wg.Wait()
				if winners != 1 {
					t.Fatalf("seed %d: %d winners, want 1", seed, winners)
				}
				total := 0
				for _, s := range steps {
					total += s
				}
				if total < 2*k {
					t.Errorf("seed %d: total steps %d < %d — step accounting lost work", seed, total, 2*k)
				}
			}
		})
	}
}

// TestMutexMutualExclusion drives the public reusable Mutex from 8 real
// goroutines and checks the guarded counter is exact.
func TestMutexMutualExclusion(t *testing.T) {
	for _, algo := range []Algorithm{Combined, RatRace, AGTV} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			const workers, iters = 8, 250
			m, err := NewMutex(ArenaOptions{Options: Options{N: workers, Algorithm: algo, Seed: 42}})
			if err != nil {
				t.Fatal(err)
			}
			counter := 0
			start := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(p *MutexProc) {
					defer wg.Done()
					<-start
					for i := 0; i < iters; i++ {
						tok, err := p.Lock(context.Background())
						if err != nil {
							t.Error(err)
							return
						}
						counter++
						if err := p.Unlock(tok); err != nil {
							t.Error(err)
							return
						}
					}
				}(m.Proc(w))
			}
			close(start)
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d, want %d", counter, workers*iters)
			}
			if st := m.Stats(); st.Rounds != workers*iters {
				t.Errorf("rounds = %d, want %d", st.Rounds, workers*iters)
			}
		})
	}
}

// TestArenaShared: several mutexes drawing from one shared arena recycle
// from the same pool and the shard stats add up.
func TestArenaShared(t *testing.T) {
	a, err := NewArena(ArenaOptions{Options: Options{N: 4, Seed: 7}, Shards: 2, Prealloc: 2})
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := a.NewMutex(), a.NewMutex()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p1, p2 := m1.Proc(id), m2.Proc(id)
			for i := 0; i < 100; i++ {
				for _, p := range []*MutexProc{p1, p2} {
					tok, err := p.Lock(context.Background())
					if err != nil {
						t.Error(err)
						return
					}
					if err := p.Unlock(tok); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Slots == 0 || st.Puts == 0 {
		t.Errorf("shared arena stats not moving: %+v", st)
	}
	if got := len(a.ShardStats()); got != 2 {
		t.Errorf("ShardStats returned %d shards, want 2", got)
	}
}

// TestMutexInvalidOptions covers the arena constructors' validation.
func TestMutexInvalidOptions(t *testing.T) {
	if _, err := NewMutex(ArenaOptions{Options: Options{N: 0}}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewArena(ArenaOptions{Options: Options{N: 2, Algorithm: Algorithm(99)}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestMutexFencing drives the public fencing surface end to end:
// monotone tokens, Holder, Revoke, the fenced release, and the
// deprecated LockUntil shim.
func TestMutexFencing(t *testing.T) {
	m, err := NewMutex(ArenaOptions{Options: Options{N: 2, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := m.Proc(0), m.Proc(1)
	tok, err := p0.Lock(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Holder() != tok || p0.Token() != tok {
		t.Fatalf("Holder()/Token() = %d/%d, want %d", m.Holder(), p0.Token(), tok)
	}
	if !m.Revoke(tok) {
		t.Fatal("Revoke of held token failed")
	}
	if err := p0.Unlock(tok); !errors.Is(err, ErrFenced) {
		t.Fatalf("Unlock after Revoke = %v, want ErrFenced", err)
	}
	// Deprecated shim still acquires; Token() recovers the fencing token.
	//lint:ignore SA1019 the shim's own regression coverage
	if !p1.LockUntil(func() bool { return false }) {
		t.Fatal("LockUntil failed on a free lock")
	}
	tok1 := p1.Token()
	if tok1 <= tok {
		t.Fatalf("token %d not monotone across revocation (prev %d)", tok1, tok)
	}
	if err := p1.Unlock(tok1); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
}

// TestRegistryElectionEpochsPublic: the public Election surface —
// exactly one leader per epoch across real goroutines, repeat answers
// cached, Reset re-opens the name, stats expose the standing.
func TestRegistryElectionEpochsPublic(t *testing.T) {
	const k = 8
	reg, err := NewRegistry(RegistryOptions{
		ArenaOptions: ArenaOptions{Options: Options{N: k, Seed: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := reg.Election("leader/shard-7")
	procs := make([]*ElectionProc, k)
	for i := range procs {
		procs[i] = e.Proc(i)
	}
	for epoch := uint64(1); epoch <= 3; epoch++ {
		var leaders atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(p *ElectionProc) {
				defer wg.Done()
				leader, got := p.Elect()
				if got != epoch {
					t.Errorf("participation in epoch %d, want %d", got, epoch)
				}
				if leader {
					leaders.Add(1)
				}
			}(procs[i])
		}
		wg.Wait()
		if leaders.Load() != 1 {
			t.Fatalf("epoch %d: %d leaders, want 1", epoch, leaders.Load())
		}
		// Repeat queries are stable within the epoch.
		for _, p := range procs {
			l1, _ := p.Elect()
			l2, _ := p.Elect()
			if l1 != l2 {
				t.Fatal("repeat Elect flipped within one epoch")
			}
		}
		es := reg.ElectionStats()
		if len(es) != 1 || !es[0].Decided || es[0].Epoch != epoch {
			t.Fatalf("ElectionStats = %+v, want decided epoch %d", es, epoch)
		}
		if next, err := e.Reset(epoch); err != nil || next != epoch+1 {
			t.Fatalf("Reset(%d) = (%d, %v)", epoch, next, err)
		}
	}
	if _, err := e.Reset(1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale Reset error = %v, want ErrStaleEpoch", err)
	}
	reg.Close()
}

// TestRegistryEvictionPublic: MaxIdle + Evict through the public
// wrappers, including the ErrRetired path and the eviction counters.
func TestRegistryEvictionPublic(t *testing.T) {
	reg, err := NewRegistry(RegistryOptions{
		ArenaOptions: ArenaOptions{Options: Options{N: 2, Seed: 9}},
		MaxIdle:      1, // nanosecond: idle immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Mutex("cold")
	p := m.Proc(0)
	tok, err := p.Lock(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Unlock(tok); err != nil {
		t.Fatal(err)
	}
	reg.Evict() // stamps activity
	if got := reg.Evict(); got != 1 {
		t.Fatalf("second Evict() = %d, want 1", got)
	}
	if !m.Retired() {
		t.Fatal("evicted mutex not Retired")
	}
	if _, err := p.Lock(context.Background()); !errors.Is(err, ErrRetired) {
		t.Fatalf("Lock on evicted mutex = %v, want ErrRetired", err)
	}
	if reg.Evictions() != 1 {
		t.Fatalf("Evictions() = %d, want 1", reg.Evictions())
	}
	// The name is reborn on next lookup.
	p2 := reg.Mutex("cold").Proc(0)
	tok2, err := p2.Lock(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Unlock(tok2); err != nil {
		t.Fatal(err)
	}
}

// TestSeedDecorrelation: with Seed zero, object seeds are resolved at
// construction (crypto/rand bootstrap) — distinct, nonzero, and stable
// across every Proc of one object.
func TestSeedDecorrelation(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 32; i++ {
		o := (Options{N: 2}).resolve()
		if o.Seed == 0 {
			t.Fatal("resolved seed is zero")
		}
		if seen[o.Seed] {
			t.Fatalf("seed %d repeated within 32 constructions", o.Seed)
		}
		seen[o.Seed] = true
	}
	// An explicit seed survives resolution untouched.
	if o := (Options{N: 2, Seed: 77}).resolve(); o.Seed != 77 {
		t.Fatalf("explicit seed rewritten to %d", o.Seed)
	}
}
