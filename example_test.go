package randtas_test

import (
	"context"
	"fmt"
	"sync"

	randtas "repro"
)

// ExampleNewTAS: eight goroutines race one one-shot test-and-set;
// exactly one receives 0 and wins.
func ExampleNewTAS() {
	obj, err := randtas.NewTAS(randtas.Options{N: 8})
	if err != nil {
		panic(err)
	}
	winners := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p *randtas.TASProc) {
			defer wg.Done()
			if p.TAS() == 0 {
				mu.Lock()
				winners++
				mu.Unlock()
			}
		}(obj.Proc(i))
	}
	wg.Wait()
	fmt.Println("winners:", winners)
	// Output: winners: 1
}

// ExampleNewLeaderElection: like TAS, but the object answers "am I the
// leader?" directly. RatRace keeps the O(log k) bound even against an
// adaptive scheduler — the right choice when the contenders are real
// goroutines.
func ExampleNewLeaderElection() {
	le, err := randtas.NewLeaderElection(randtas.Options{N: 4, Algorithm: randtas.RatRace})
	if err != nil {
		panic(err)
	}
	leaders := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(p *randtas.Proc) {
			defer wg.Done()
			if p.Elect() {
				mu.Lock()
				leaders++
				mu.Unlock()
			}
		}(le.Proc(i))
	}
	wg.Wait()
	fmt.Println("leaders:", leaders)
	// Output: leaders: 1
}

// ExampleNewMutex: a reusable fenced lock chained from one-shot TAS
// rounds. Every acquisition returns a strictly monotone fencing token
// that the release verifies; the counter is a plain int — the mutex
// alone serializes it.
func ExampleNewMutex() {
	m, err := randtas.NewMutex(randtas.ArenaOptions{Options: randtas.Options{N: 4}})
	if err != nil {
		panic(err)
	}
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(p *randtas.MutexProc) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tok, err := p.Lock(context.Background())
				if err != nil {
					panic(err)
				}
				counter++
				if err := p.Unlock(tok); err != nil {
					panic(err) // ErrFenced would mean our lease was revoked
				}
			}
		}(m.Proc(i))
	}
	wg.Wait()
	fmt.Println("counter:", counter)
	// Output: counter: 4000
}

// ExampleNewRegistry: named fenced locks on one shared arena — the
// in-process surface that cmd/tasd serves over TCP. The holder's token
// is visible to everyone, so downstream resources can fence stale
// writers.
func ExampleNewRegistry() {
	reg, err := randtas.NewRegistry(randtas.RegistryOptions{
		ArenaOptions: randtas.ArenaOptions{Options: randtas.Options{N: 2}},
	})
	if err != nil {
		panic(err)
	}
	p := reg.Mutex("build/cache").Proc(0)
	for i := 0; i < 2; i++ {
		tok, err := p.Lock(context.Background())
		if err != nil {
			panic(err)
		}
		if err := p.Unlock(tok); err != nil {
			panic(err)
		}
	}
	for _, st := range reg.Stats() {
		fmt.Printf("%s: %d rounds, holder token %d\n", st.Name, st.Rounds, st.HolderToken)
	}
	// Output: build/cache: 2 rounds, holder token 0
}

// ExampleRegistry_Election: re-electable leadership. Each epoch is one
// pristine one-shot election — exactly one leader — and Reset retires
// the epoch so the name can elect again, with the epoch number as the
// leadership fencing value.
func ExampleRegistry_Election() {
	reg, err := randtas.NewRegistry(randtas.RegistryOptions{
		ArenaOptions: randtas.ArenaOptions{Options: randtas.Options{N: 2}},
	})
	if err != nil {
		panic(err)
	}
	e := reg.Election("leader/shard-7")
	p := e.Proc(0)

	leader, epoch := p.Elect() // sole participant: always the leader
	fmt.Printf("epoch %d leader: %v\n", epoch, leader)

	if _, err := e.Reset(epoch); err != nil {
		panic(err)
	}
	leader, epoch = p.Elect() // fresh epoch, fresh election
	fmt.Printf("epoch %d leader: %v\n", epoch, leader)
	// Output:
	// epoch 1 leader: true
	// epoch 2 leader: true
}
