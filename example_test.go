package randtas_test

import (
	"fmt"
	"sync"

	randtas "repro"
)

// ExampleNewTAS: eight goroutines race one one-shot test-and-set;
// exactly one receives 0 and wins.
func ExampleNewTAS() {
	obj, err := randtas.NewTAS(randtas.Options{N: 8})
	if err != nil {
		panic(err)
	}
	winners := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p *randtas.TASProc) {
			defer wg.Done()
			if p.TAS() == 0 {
				mu.Lock()
				winners++
				mu.Unlock()
			}
		}(obj.Proc(i))
	}
	wg.Wait()
	fmt.Println("winners:", winners)
	// Output: winners: 1
}

// ExampleNewLeaderElection: like TAS, but the object answers "am I the
// leader?" directly. RatRace keeps the O(log k) bound even against an
// adaptive scheduler — the right choice when the contenders are real
// goroutines.
func ExampleNewLeaderElection() {
	le, err := randtas.NewLeaderElection(randtas.Options{N: 4, Algorithm: randtas.RatRace})
	if err != nil {
		panic(err)
	}
	leaders := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(p *randtas.Proc) {
			defer wg.Done()
			if p.Elect() {
				mu.Lock()
				leaders++
				mu.Unlock()
			}
		}(le.Proc(i))
	}
	wg.Wait()
	fmt.Println("leaders:", leaders)
	// Output: leaders: 1
}

// ExampleNewMutex: a reusable lock chained from one-shot TAS rounds.
// The counter is a plain int — the mutex alone serializes it.
func ExampleNewMutex() {
	m, err := randtas.NewMutex(randtas.ArenaOptions{Options: randtas.Options{N: 4}})
	if err != nil {
		panic(err)
	}
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(p *randtas.MutexProc) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				p.Lock()
				counter++
				p.Unlock()
			}
		}(m.Proc(i))
	}
	wg.Wait()
	fmt.Println("counter:", counter)
	// Output: counter: 4000
}

// ExampleNewRegistry: named locks on one shared arena — the in-process
// surface that cmd/tasd serves over TCP.
func ExampleNewRegistry() {
	reg, err := randtas.NewRegistry(randtas.RegistryOptions{
		ArenaOptions: randtas.ArenaOptions{Options: randtas.Options{N: 2}},
	})
	if err != nil {
		panic(err)
	}
	p := reg.Mutex("build/cache").Proc(0)
	p.Lock()
	p.Unlock()
	p.Lock()
	p.Unlock()
	for _, st := range reg.Stats() {
		fmt.Printf("%s: %d rounds\n", st.Name, st.Rounds)
	}
	// Output: build/cache: 2 rounds
}
