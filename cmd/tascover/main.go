// Command tascover runs the Section 5 covering adversary (the executable
// Ω(log n) space lower bound of Theorem 5.1) against a chosen leader
// election and reports the covering structure it constructs.
//
// The space bound holds for every coin fixing (Section 5.1), so -seed
// picks one fixing; distinct seeds explore distinct deterministic
// restrictions of the algorithm. Seeds map to coin streams via the
// engine v2 (splitmix64) seed mapping.
//
// Usage:
//
//	tascover [-n 64] [-seed 1] [-algo logstar|sifting|ratrace|agtv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agtv"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/ratrace"
	"repro/internal/shm"
)

func main() {
	var (
		n    = flag.Int("n", 64, "number of processes (power of two recommended)")
		seed = flag.Int64("seed", 1, "coin-fixing seed")
		algo = flag.String("algo", "logstar", "algorithm: logstar, sifting, ratrace, agtv")
	)
	flag.Parse()

	setup, ok := setups(*n)[*algo]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(1)
	}
	res := lowerbound.RunCovering(*n, *seed, setup)
	_, bound := lowerbound.SpaceBound(*n)
	f := lowerbound.F(*n, *n-4)

	fmt.Printf("covering adversary vs %s, n=%d, seed=%d\n\n", *algo, *n, *seed)
	fmt.Printf("  rounds executed:         %d\n", res.Rounds)
	fmt.Printf("  surviving groups:        %d   (Lemma 5.4 bound f(n-4) = %d)\n", res.Groups, f[*n-4])
	fmt.Printf("  registers covered:       %d   (Theorem 5.1 bound log2(n)-1 = %d)\n", res.CoveredRegisters, bound)
	fmt.Printf("  max cover per register:  %d   (construction bound 4)\n", res.MaxCoverPerRegister)
	fmt.Printf("  algorithm registers:     %d   (%d touched by the construction)\n",
		res.TotalRegisters, res.TouchedRegisters)
	if len(res.Violations) > 0 {
		fmt.Printf("\nINVARIANT VIOLATIONS (%d):\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("\nno invariant violations: the execution covers at least log2(n)-1 registers,")
	fmt.Println("matching the paper's space lower bound for nondeterministic solo-terminating TAS.")
}

func setups(n int) map[string]func(s shm.Space) func(shm.Handle) {
	return map[string]func(s shm.Space) func(shm.Handle){
		"logstar": func(s shm.Space) func(shm.Handle) {
			le := core.NewLogStar(s, n)
			return func(h shm.Handle) { le.Elect(h) }
		},
		"sifting": func(s shm.Space) func(shm.Handle) {
			le := core.NewSifting(s, n)
			return func(h shm.Handle) { le.Elect(h) }
		},
		"ratrace": func(s shm.Space) func(shm.Handle) {
			le := ratrace.NewSpaceEfficient(s, n)
			return func(h shm.Handle) { le.Elect(h) }
		},
		"agtv": func(s shm.Space) func(shm.Handle) {
			le := agtv.New(s, n)
			return func(h shm.Handle) { le.Elect(h) }
		},
	}
}
