// Simcompare mode: the before/after harness for the simulator engine
// overhaul (PR 3). It measures the same
// representative Monte Carlo cell — the log* chain at n=1024, k=16 under
// the random-oblivious schedule — three ways inside one binary:
//
//   - baseline:  the pre-PR trial driver shape — a fresh System and a
//     full algorithm construction per trial, strictly sequential;
//   - pooled(1): the overhauled driver on a single worker — one System
//     per worker, Reset-recycled between trials;
//   - parallel:  the same driver on GOMAXPROCS workers;
//
// and emits the numbers as JSON (default BENCH_PR3.json). The committed
// artifact additionally records the true pre-PR engine measurement taken
// at the previous commit via -simpreref (the in-binary baseline runs on
// the new rendezvous/RNG core, so it understates the total engine gain).
//
// Two gates make the CI bench job a regression guard, not a report: the
// pooled driver must beat the per-trial-construction baseline by at least
// simSpeedupFloor, and the parallel sweep's StepStats must be
// byte-identical to the sequential sweep's.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/shm"
	"repro/internal/sim"
)

// simSpeedupFloor gates pooled(1) against the in-binary baseline. The
// committed artifact shows ~12×; 2× leaves headroom for noisy CI runners
// while still catching any real engine regression.
const simSpeedupFloor = 2.0

// Representative cell: matches BenchmarkSimTrial and the E2 sweep shape.
const (
	simCellN = 1024
	simCellK = 16
)

type simSide struct {
	NsPerTrial     float64 `json:"ns_per_trial"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	BytesPerTrial  float64 `json:"bytes_per_trial"`
}

type simReport struct {
	Schema     string `json:"schema"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Cell       string `json:"cell"`
	Trials     int    `json:"trials"`
	Note       string `json:"note"`

	Baseline     simSide `json:"baseline"`
	PooledSingle simSide `json:"pooled_single_worker"`
	Parallel     simSide `json:"parallel"`
	Workers      int     `json:"parallel_workers"`

	SpeedupPooled   float64 `json:"speedup_pooled_vs_baseline"`
	SpeedupParallel float64 `json:"speedup_parallel_vs_baseline"`

	ParallelMatchesSequential bool `json:"parallel_matches_sequential"`

	// PrePRReferenceNsPerTrial is the externally measured ns/trial of the
	// pre-PR engine (two-channel handshake, math/rand coins, per-trial
	// construction) on the same cell and machine, supplied via -simpreref;
	// zero when not supplied.
	PrePRReferenceNsPerTrial float64 `json:"pre_pr_reference_ns_per_trial,omitempty"`
	SpeedupVsPrePR           float64 `json:"speedup_vs_pre_pr,omitempty"`
}

func simCellSpec(trials, workers int, seed int64) harness.Spec {
	return harness.Spec{
		Algorithm: "logstar",
		Factory: func(s shm.Space, n int) (harness.Elector, func(int) bool) {
			le := core.NewLogStar(s, n)
			return le, le.IsArrayRegister
		},
		N:        simCellN,
		K:        simCellK,
		Trials:   trials,
		BaseSeed: seed,
		Adversary: harness.Oblivious(func(s int64) sim.Adversary {
			return sim.NewRandomOblivious(s)
		}),
		Workers: workers,
	}
}

// measureSim times fn over `trials` trials, attributing allocation deltas
// to the trial loop. The GC runs beforehand so the deltas measure the
// loop, not leftover garbage.
func measureSim(trials int, fn func()) simSide {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return simSide{
		NsPerTrial:     float64(elapsed.Nanoseconds()) / float64(trials),
		TrialsPerSec:   float64(trials) / elapsed.Seconds(),
		AllocsPerTrial: float64(m1.Mallocs-m0.Mallocs) / float64(trials),
		BytesPerTrial:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(trials),
	}
}

// simBaseline is the pre-PR driver shape: fresh System, fresh algorithm
// construction, sequential trials. Seeds follow the documented
// TrialSeed mapping so all three legs run the same executions.
func simBaseline(trials int, seed int64) error {
	for t := 0; t < trials; t++ {
		trialSeed := harness.TrialSeed(seed, t)
		sys := sim.NewSystem(sim.Config{N: simCellK, Seed: trialSeed})
		le := core.NewLogStar(sys, simCellN)
		winners := 0
		sys.Run(sim.NewRandomOblivious(trialSeed^harness.AdversarySeedMix), func(h shm.Handle) {
			if le.Elect(h) {
				winners++
			}
		})
		if winners != 1 {
			return fmt.Errorf("baseline trial %d elected %d winners", t, winners)
		}
	}
	return nil
}

func runSimCompare(cfg compareConfig) error {
	trials := cfg.simTrials
	workers := runtime.GOMAXPROCS(0)
	report := simReport{
		Schema:     "randtas-bench-sim/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: workers,
		Cell:       fmt.Sprintf("logstar n=%d k=%d random-oblivious", simCellN, simCellK),
		Trials:     trials,
		Workers:    workers,
		Note: "baseline = fresh System + algorithm construction per trial, sequential (pre-PR driver shape); " +
			"pooled = harness.Run, one Reset-recycled System per worker; " +
			"pre_pr_reference = engine with two-channel handshake and math/rand coins, measured at the previous commit",
		PrePRReferenceNsPerTrial: cfg.simPreRef,
	}

	var err error
	report.Baseline = measureSim(trials, func() {
		if err == nil {
			err = simBaseline(trials, cfg.seed)
		}
	})
	if err != nil {
		return err
	}

	var stSeq, stPooled, stPar harness.StepStats
	// The sequential reference sweep for the byte-identical check runs
	// untimed first; pooled(1) is then a timed run of the same spec.
	if stSeq, err = harness.Run(simCellSpec(trials, 1, cfg.seed)); err != nil {
		return err
	}
	report.PooledSingle = measureSim(trials, func() {
		if err == nil {
			stPooled, err = harness.Run(simCellSpec(trials, 1, cfg.seed))
		}
	})
	if err != nil {
		return err
	}
	report.Parallel = measureSim(trials, func() {
		if err == nil {
			stPar, err = harness.Run(simCellSpec(trials, 0, cfg.seed))
		}
	})
	if err != nil {
		return err
	}

	report.ParallelMatchesSequential = reflect.DeepEqual(stSeq, stPooled) && reflect.DeepEqual(stSeq, stPar)
	report.SpeedupPooled = report.Baseline.NsPerTrial / report.PooledSingle.NsPerTrial
	report.SpeedupParallel = report.Baseline.NsPerTrial / report.Parallel.NsPerTrial
	if report.PrePRReferenceNsPerTrial > 0 {
		report.SpeedupVsPrePR = report.PrePRReferenceNsPerTrial / report.PooledSingle.NsPerTrial
	}

	tbl := harness.Table{
		Title:   fmt.Sprintf("Simulator engine: %s, %d trials", report.Cell, trials),
		Headers: []string{"engine", "ns/trial", "trials/sec", "allocs/trial", "speedup"},
		Notes: []string{
			fmt.Sprintf("parallel = %d workers; parallel output byte-identical to sequential: %v",
				workers, report.ParallelMatchesSequential),
		},
	}
	addSide := func(name string, s simSide, speedup float64) {
		tbl.AddRow(name,
			fmt.Sprintf("%.0f", s.NsPerTrial),
			fmt.Sprintf("%.0f", s.TrialsPerSec),
			fmt.Sprintf("%.1f", s.AllocsPerTrial),
			fmt.Sprintf("%.2fx", speedup))
	}
	addSide("baseline (fresh/trial)", report.Baseline, 1.0)
	addSide("pooled (1 worker)", report.PooledSingle, report.SpeedupPooled)
	addSide(fmt.Sprintf("parallel (%d workers)", workers), report.Parallel, report.SpeedupParallel)
	fmt.Println(tbl.String())

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(cfg.simOut, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.simOut)

	// Regression gates, checked after the report is written so a failing
	// run still leaves the evidence behind.
	if !report.ParallelMatchesSequential {
		return fmt.Errorf("parallel sweep output diverges from sequential:\nseq:    %+v\npooled: %+v\npar:    %+v",
			stSeq, stPooled, stPar)
	}
	if report.SpeedupPooled < simSpeedupFloor {
		return fmt.Errorf("pooled trial driver only %.2fx over per-trial construction (floor %.2fx)",
			report.SpeedupPooled, simSpeedupFloor)
	}
	return nil
}
