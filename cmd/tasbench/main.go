// Command tasbench regenerates every experiment table of the reproduction
// (see EXPERIMENTS.md for the experiment ↔ theorem mapping) and, in
// throughput mode, load-tests the reusable arena-backed Mutex.
//
// Usage:
//
//	tasbench [-mode=experiments] [-experiment all|E1|E2|...] [-trials N] [-seed S] [-quick]
//	tasbench -mode=throughput [-goroutines G] [-duration D] [-algos a,b,c]
//	         [-shards S] [-prealloc P] [-work W] [-seed S]
//	tasbench -mode=compare [-goroutines G] [-duration D] [-algos a,b,c]
//	         [-shards S] [-prealloc P] [-work W]
//	         [-out BENCH_PR2.json] [-preref algo=ns,...]
//	tasbench -mode=simcompare [-simtrials N] [-simout BENCH_PR3.json] [-simpreref NS]
//	tasbench -mode=net [-scenario pairs|churn|storm|disconnect|flood]
//	         [-clients C] [-pipeline D] [-locks L] [-duration D] [-wait D]
//	         [-addr host:port] [-netout BENCH_PR8.json] [-netfloor OPS]
//	tasbench -mode=dst [-dstseeds N] [-seed S] [-dstscenario all|mixed|...]
//	         [-dstops N] [-dstv]
//	tasbench -mode=complexity [-trials N] [-seed S] [-quick]
//	         [-cxout BENCH_PR9.json] [-benchpre name=ns,...] [-benchpost name=ns,...]
//
// Each experiment prints a fixed-width table whose *shape* (who wins, by
// what growth rate, where crossovers fall) reproduces the corresponding
// theorem of Giakkoupis & Woelfel (PODC 2012). Throughput mode (see
// throughput.go) reports ops/sec, wait/hold percentiles, and steps/op of
// sustained Lock/Unlock traffic on real goroutines; compare and
// simcompare are the regression-gated before/after harnesses of the
// PR 2 mutex fast path and the PR 3 simulator engine; net mode (see
// net.go) load-tests the tasd lock daemon over loopback TCP and records
// BENCH_PR4.json.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/aa"
	"repro/internal/agtv"
	"repro/internal/combiner"
	"repro/internal/core"
	"repro/internal/groupelect"
	"repro/internal/harness"
	"repro/internal/lowerbound"
	"repro/internal/markov"
	"repro/internal/ratrace"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/twoproc"
)

func main() {
	var (
		mode       = flag.String("mode", "experiments", "'experiments' (simulator tables), 'throughput' (real-goroutine Mutex load test), 'compare' (mutex fast-path before/after JSON), 'simcompare' (simulator engine before/after JSON), 'net' (tasd loopback load test) or 'dst' (deterministic whole-service simulation over a seed corpus)")
		experiment = flag.String("experiment", "all", "experiment id (E1..E11) or 'all'")
		trials     = flag.Int("trials", 100, "Monte-Carlo trials per table cell")
		seed       = flag.Int64("seed", 1, "base random seed")
		quick      = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")

		goroutines = flag.Int("goroutines", 8, "throughput/compare: concurrent lockers")
		duration   = flag.Duration("duration", 2*time.Second, "throughput/compare: load duration per algorithm")
		algos      = flag.String("algos", "combined,logstar,ratrace,agtv", "throughput/compare: comma-separated algorithms")
		shards     = flag.Int("shards", 0, "throughput/compare: arena shards (0 = default)")
		prealloc   = flag.Int("prealloc", 0, "throughput/compare: preallocated slots per shard (0 = default)")
		work       = flag.Int("work", 0, "throughput/compare: spin iterations inside the critical section")

		out    = flag.String("out", "BENCH_PR2.json", "compare: mutex output JSON path")
		preref = flag.String("preref", "", "compare: externally measured pre-PR ns/op, e.g. combined=35796,agtv=102")

		simTrials = flag.Int("simtrials", 2000, "simcompare: trials for the sim-throughput section")
		simOut    = flag.String("simout", "BENCH_PR3.json", "simcompare: sim-throughput output JSON path")
		simPreRef = flag.Float64("simpreref", 0, "simcompare: externally measured pre-PR engine ns/trial on the sim cell")

		clients  = flag.Int("clients", 8, "net: concurrent client connections")
		pipeline = flag.Int("pipeline", 16, "net: ACQUIRE/RELEASE pairs per pipelined batch")
		nlocks   = flag.Int("locks", 4, "net: distinct named locks")
		scenario = flag.String("scenario", "pairs", "net: 'pairs' (leased acquire/release), 'churn' (abandoned holds recovered by lease expiry), 'storm' (stale-token fencing storm), 'disconnect' (clients hang up mid-ACQUIRE; asserts abort + slot reclaim) or 'flood' (open-loop overload against a small admission envelope; asserts shedding + goodput + bounds)")
		ttl      = flag.Duration("ttl", 0, "net/hold: lease TTL attached to acquires (0 = no lease)")
		abandon  = flag.Int("abandon", 8, "net churn: forget the release every Nth cycle")
		netWait  = flag.Duration("wait", 0, "net flood: per-ACQUIRE server-side wait budget (0 = 5ms default)")
		netAddr  = flag.String("addr", "", "net/hold: target a running tasd (net: empty = in-process loopback server)")
		netOut   = flag.String("netout", "BENCH_PR8.json", "net: output JSON path")
		netFloor = flag.Float64("netfloor", 0, "net: fail below this many ops/sec (0 = no gate)")

		holdLock = flag.String("holdlock", "smoke/hold", "hold: lock name to acquire")
		holdFor  = flag.Duration("holdfor", 0, "hold: how long to sit on the lock before releasing")

		cxOut  = flag.String("cxout", "BENCH_PR9.json", "complexity: output JSON path ('' = no file)")
		cxPre  = flag.String("benchpre", "", "complexity: committed counters-off baseline ns/op, e.g. mutex/combined=288.9,reset/full=7640")
		cxPost = flag.String("benchpost", "", "complexity: post-change counters-off ns/op, same shape as -benchpre")

		dstSeeds    = flag.Int("dstseeds", 64, "dst: corpus size (seeds base, base+1, ...)")
		dstScenario = flag.String("dstscenario", "all", "dst: scenario ('mixed', 'locks', 'chaos', 'elect', 'fuzz', 'abortstorm', 'overload') or 'all' to rotate")
		dstOps      = flag.Int("dstops", 0, "dst: operations per client (0 = scenario default)")
		dstVerbose  = flag.Bool("dstv", false, "dst: print one line per seed")
	)
	flag.Parse()

	switch *mode {
	case "complexity":
		err := runComplexity(complexityConfig{
			seed:      *seed,
			trials:    *trials,
			quick:     *quick,
			out:       *cxOut,
			benchPre:  *cxPre,
			benchPost: *cxPost,
		})
		if err != nil {
			fatalf("tasbench: %v", err)
		}
		return
	case "dst":
		err := runDST(dstConfig{
			seeds:    *dstSeeds,
			base:     uint64(*seed),
			scenario: *dstScenario,
			ops:      *dstOps,
			verbose:  *dstVerbose,
		})
		if err != nil {
			fatalf("tasbench: %v", err)
		}
		return
	case "hold":
		if err := runHold(*netAddr, *holdLock, *ttl, *holdFor); err != nil {
			fatalf("tasbench: %v", err)
		}
		return
	case "net":
		err := runNet(netConfig{
			scenario: *scenario,
			clients:  *clients,
			pipeline: *pipeline,
			locks:    *nlocks,
			duration: *duration,
			ttl:      *ttl,
			abandon:  *abandon,
			wait:     *netWait,
			addr:     *netAddr,
			algos:    *algos,
			seed:     *seed,
			out:      *netOut,
			floor:    *netFloor,
		})
		if err != nil {
			fatalf("tasbench: %v", err)
		}
		return
	case "simcompare":
		err := runSimCompare(compareConfig{
			seed:      *seed,
			simTrials: *simTrials,
			simOut:    *simOut,
			simPreRef: *simPreRef,
		})
		if err != nil {
			fatalf("tasbench: %v", err)
		}
		return
	case "compare":
		err := runCompare(compareConfig{
			goroutines: *goroutines,
			duration:   *duration,
			algos:      *algos,
			shards:     *shards,
			prealloc:   *prealloc,
			work:       *work,
			seed:       *seed,
			out:        *out,
			preref:     *preref,
		})
		if err != nil {
			fatalf("tasbench: %v", err)
		}
		return
	case "throughput":
		err := runThroughput(throughputConfig{
			goroutines: *goroutines,
			duration:   *duration,
			algos:      *algos,
			shards:     *shards,
			prealloc:   *prealloc,
			work:       *work,
			seed:       *seed,
		})
		if err != nil {
			fatalf("tasbench: %v", err)
		}
		return
	case "experiments":
		// fall through to the simulator tables below
	default:
		fatalf("tasbench: unknown -mode %q (want 'experiments', 'throughput', 'compare', 'simcompare', 'net', 'hold', 'dst' or 'complexity')", *mode)
	}

	cfg := config{trials: *trials, seed: *seed, quick: *quick}

	experiments := []struct {
		id   string
		desc string
		run  func(config) []harness.Table
	}{
		{"E1", "Lemma 2.2: Figure 1 group election performance", runE1},
		{"E2", "Theorem 2.3: O(log* k) leader election", runE2},
		{"E3", "Sec 2.3/Theorem 2.4: sifting leader elections", runE3},
		{"E4", "Section 3: RatRace steps and space", runE4},
		{"E5", "Theorem 4.1: adversary-independent combination", runE5},
		{"E6", "Theorem 5.1: space lower bound (covering adversary)", runE6},
		{"E7", "Theorem 6.1: 2-process time lower bound", runE7},
		{"E8", "Claim 3.2: leaf-block occupancy tail", runE8},
		{"E9", "Adversary separation attacks", runE9},
		{"E10", "Cross-algorithm step comparison", runE10},
		{"E11", "Tromp-Vitanyi 2-process building block", runE11},
	}

	want := strings.ToUpper(*experiment)
	ran := false
	for _, e := range experiments {
		if want != "ALL" && want != e.id {
			continue
		}
		ran = true
		fmt.Printf("### %s — %s\n\n", e.id, e.desc)
		for _, tbl := range e.run(cfg) {
			fmt.Println(tbl.String())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(1)
	}
}

type config struct {
	trials int
	seed   int64
	quick  bool
}

func (c config) ks(full []int) []int {
	if !c.quick {
		return full
	}
	if len(full) > 3 {
		return full[:3]
	}
	return full
}

func (c config) t(n int) int {
	if c.quick && n > 20 {
		return 20
	}
	return n
}

// --- factories --------------------------------------------------------------

func logStarFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	le := core.NewLogStar(s, n)
	return le, le.IsArrayRegister
}

func siftingFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	return core.NewSifting(s, n), nil
}

func adaptiveSiftFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	return core.NewAdaptiveSifting(s, n), nil
}

func ratraceSEFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	return ratrace.NewSpaceEfficient(s, n), nil
}

func agtvFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	return agtv.New(s, n), nil
}

func aaFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	return aa.NewSpaceEfficient(s, n), nil
}

func combinedFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	rr := ratrace.NewSpaceEfficient(s, n)
	chain := core.NewLogStar(s, n)
	return combiner.New(s, rr, chain), chain.IsArrayRegister
}

func randomObl(seed int64) sim.Adversary { return sim.NewRandomOblivious(seed) }

// measure runs one Monte Carlo cell through the parallel harness driver,
// exiting with a descriptive message if any trial violates the one-winner
// contract.
func measure(algo string, f harness.Factory, n, k, trials int, seed int64, adv harness.AdversaryFactory) harness.StepStats {
	st, err := harness.Run(harness.Spec{
		Algorithm: algo,
		Factory:   f,
		N:         n,
		K:         k,
		Trials:    trials,
		BaseSeed:  seed,
		Adversary: adv,
	})
	if err != nil {
		fatalf("tasbench: %v", err)
	}
	return st
}

// --- E1: Figure 1 group election performance --------------------------------

func runE1(c config) []harness.Table {
	tbl := harness.Table{
		Title:   "Fig.1 group election: E[#elected] vs k (location-oblivious schedule)",
		Headers: []string{"k", "E[#elected]", "bound 2·log2(k)+6", "within"},
		Notes:   []string{"Lemma 2.2: the mean must stay below the bound for every k."},
	}
	const n = 1 << 12
	for _, k := range c.ks([]int{2, 8, 32, 128, 512, 2048}) {
		sum := 0
		trials := c.t(c.trials)
		sys := sim.NewSystem(sim.Config{N: k, Seed: c.seed, Reuse: true})
		ge := groupelect.NewFig1(sys, n)
		elected := 0
		body := func(h shm.Handle) {
			if ge.Elect(h) {
				elected++
			}
		}
		for t := 0; t < trials; t++ {
			sys.Reset(c.seed + int64(t))
			elected = 0
			sys.Run(sim.NewRandomOblivious(c.seed+int64(t)+999), body)
			sum += elected
		}
		sys.Release()
		mean := float64(sum) / float64(trials)
		bound := 2*math.Log2(float64(k)) + 6
		tbl.AddRow(k, mean, bound, mean <= bound)
	}
	return []harness.Table{tbl}
}

// --- E2: log* leader election ------------------------------------------------

func runE2(c config) []harness.Table {
	steps := harness.Table{
		Title:   "log* LE: expected max steps vs contention k (oblivious schedule, n=4096)",
		Headers: []string{"k", "E[max steps]", "p95", "log*(k)", "winners/trials"},
		Notes:   []string{"Theorem 2.3: growth must track log* k — essentially flat."},
	}
	const n = 1 << 12
	for _, k := range c.ks([]int{2, 8, 64, 512, 4096}) {
		st := measure("logstar", logStarFactory, n, k, c.t(c.trials), c.seed, harness.Oblivious(randomObl))
		steps.AddRow(k, st.MeanMax, st.P95Max, markov.LogStar(float64(k)), fmt.Sprintf("%d/%d", st.Winners, st.Trials))
	}
	space := harness.Table{
		Title:   "log* LE: registers vs n",
		Headers: []string{"n", "registers", "registers/n"},
		Notes:   []string{"Theorem 2.3: O(n) space."},
	}
	for _, n := range []int{256, 1024, 4096, 16384} {
		sys := sim.NewSystem(sim.Config{N: 1, Seed: 1})
		core.NewLogStar(sys, n)
		r := sys.RegisterCount()
		space.AddRow(n, r, float64(r)/float64(n))
	}
	return []harness.Table{steps, space}
}

// --- E3: sifting leader elections ---------------------------------------------

func runE3(c config) []harness.Table {
	nonAdaptive := harness.Table{
		Title:   "Sifting LE (non-adaptive): expected max steps vs k (n=4096)",
		Headers: []string{"k", "E[max steps]", "p95", "loglog(n)"},
		Notes:   []string{"Section 2.3: O(log log n), independent of k."},
	}
	const n = 1 << 12
	for _, k := range c.ks([]int{2, 8, 64, 512, 4096}) {
		st := measure("sifting", siftingFactory, n, k, c.t(c.trials), c.seed, harness.Oblivious(randomObl))
		nonAdaptive.AddRow(k, st.MeanMax, st.P95Max, markov.LogLog(float64(n)))
	}
	adaptive := harness.Table{
		Title:   "Adaptive sifting LE (Thm 2.4): expected max steps vs k (n=4096)",
		Headers: []string{"k", "E[max steps]", "p95", "loglog(k)"},
		Notes:   []string{"Theorem 2.4: growth must track log log k."},
	}
	for _, k := range c.ks([]int{2, 8, 64, 512, 4096}) {
		st := measure("adaptive-sifting", adaptiveSiftFactory, n, k, c.t(c.trials), c.seed, harness.Oblivious(randomObl))
		adaptive.AddRow(k, st.MeanMax, st.P95Max, markov.LogLog(float64(k)))
	}
	return []harness.Table{nonAdaptive, adaptive}
}

// --- E4: RatRace ----------------------------------------------------------------

func runE4(c config) []harness.Table {
	steps := harness.Table{
		Title:   "Space-efficient RatRace: expected max steps vs k (adaptive lockstep, n=1024)",
		Headers: []string{"k", "E[max steps]", "p95", "worst", "log2(k)"},
		Notes:   []string{"Section 3: O(log k) in expectation and w.h.p. against the adaptive adversary."},
	}
	const n = 1 << 10
	for _, k := range c.ks([]int{2, 8, 64, 256, 1024}) {
		st := measure("ratrace-se", ratraceSEFactory, n, k, c.t(c.trials),
			c.seed, func(int64, func(int) bool) sim.Adversary { return sim.NewLockstep() })
		steps.AddRow(k, st.MeanMax, st.P95Max, st.WorstMax, math.Log2(float64(k)))
	}
	space := harness.Table{
		Title:   "RatRace space: original Θ(n³) vs modified Θ(n)",
		Headers: []string{"n", "orig registers", "modified registers", "ratio"},
		Notes:   []string{"Section 3.2: the modification removes the n³ tree and n² grid."},
	}
	for _, n := range []int{4, 8, 16, 32} {
		so := sim.NewSystem(sim.Config{N: 1, Seed: 1})
		ratrace.NewOriginal(so, n)
		sm := sim.NewSystem(sim.Config{N: 1, Seed: 1})
		ratrace.NewSpaceEfficient(sm, n)
		space.AddRow(n, so.RegisterCount(), sm.RegisterCount(),
			float64(so.RegisterCount())/float64(sm.RegisterCount()))
	}
	return []harness.Table{steps, space}
}

// --- E5: combiner ----------------------------------------------------------------

func runE5(c config) []harness.Table {
	attack := harness.Table{
		Title:   "Adaptive (ascending-location) attack: naive log* vs combined",
		Headers: []string{"k", "naive max steps", "combined max steps"},
		Notes: []string{
			"Theorem 4.1: the naive chain degrades to Θ(k); the combination stays O(log k).",
		},
	}
	for _, k := range c.ks([]int{8, 16, 32, 64, 128}) {
		naive := measure("logstar", logStarFactory, k, k, 1, c.seed,
			func(_ int64, isArr func(int) bool) sim.Adversary { return sim.NewAscendingLocation(isArr) })
		comb := measure("combined", combinedFactory, k, k, 1, c.seed,
			func(_ int64, isArr func(int) bool) sim.Adversary { return sim.NewAscendingLocation(isArr) })
		attack.AddRow(k, naive.WorstMax, comb.WorstMax)
	}
	weak := harness.Table{
		Title:   "Oblivious schedule: plain log* vs combined (constant-factor overhead)",
		Headers: []string{"k", "plain E[max]", "combined E[max]", "ratio"},
	}
	const n = 512
	for _, k := range c.ks([]int{4, 32, 256}) {
		plain := measure("logstar", logStarFactory, n, k, c.t(40), c.seed, harness.Oblivious(randomObl))
		comb := measure("combined", combinedFactory, n, k, c.t(40), c.seed, harness.Oblivious(randomObl))
		weak.AddRow(k, plain.MeanMax, comb.MeanMax, comb.MeanMax/plain.MeanMax)
	}
	return []harness.Table{attack, weak}
}

// --- E6: covering space lower bound ----------------------------------------------

func runE6(c config) []harness.Table {
	tbl := harness.Table{
		Title:   "Covering adversary vs log* LE: covered registers vs Theorem 5.1 bound",
		Headers: []string{"n", "groups m", "f(n-4)", "covered regs", "bound log2(n)-1", "max cover", "violations"},
		Notes: []string{
			"Lemma 5.4/Theorem 5.1: groups ≥ f(n−4) = 4(log n − 1); covered ≥ log n − 1; cover ≤ 4.",
		},
	}
	ns := []int{8, 16, 32, 64}
	if c.quick {
		ns = []int{8, 16}
	}
	for _, n := range ns {
		res := lowerbound.RunCovering(n, c.seed, func(s shm.Space) func(shm.Handle) {
			le := core.NewLogStar(s, n)
			return func(h shm.Handle) { le.Elect(h) }
		})
		f := lowerbound.F(n, n-4)
		_, bound := lowerbound.SpaceBound(n)
		tbl.AddRow(n, res.Groups, f[n-4], res.CoveredRegisters, bound,
			res.MaxCoverPerRegister, len(res.Violations))
	}
	return []harness.Table{tbl}
}

// --- E7: two-process time lower bound --------------------------------------------

func runE7(c config) []harness.Table {
	tbl := harness.Table{
		Title:   "2-process TAS: max over schedules of P[some process needs ≥ t steps]",
		Headers: []string{"t", "|S_t|", "max prob", "bound 1/4^t", "≥ bound"},
		Notes:   []string{"Theorem 6.1: every randomized 2-process TAS respects the bound."},
	}
	// The losing process's shortest path is 6 steps (done-read, flag
	// raise, flag read, one re-flip write+read, done-write), so the
	// probability is exactly 1 up to t = 6 and the bound becomes
	// non-trivial from t = 7.
	ts := []int{1, 2, 3, 4, 5, 6, 7}
	if c.quick {
		ts = []int{1, 2, 3}
	}
	for _, t := range ts {
		p := lowerbound.TwoProcessTimeBound(t, c.t(c.trials), c.seed)
		tbl.AddRow(t, p.Schedules, fmt.Sprintf("%.4f", p.MaxProb),
			fmt.Sprintf("%.4f", p.Bound), p.MaxProb >= p.Bound)
	}
	return []harness.Table{tbl}
}

// --- E8: Claim 3.2 occupancy ------------------------------------------------------

func runE8(c config) []harness.Table {
	tbl := harness.Table{
		Title:   "Claim 3.2: P[some log n leaf block receives > 4 log n of n random descents]",
		Headers: []string{"n", "threshold 4·log2 n", "overflow fraction", "1/n²"},
		Notes:   []string{"The balls-in-bins tail that sizes the elimination paths."},
	}
	for _, n := range []int{64, 256, 1024} {
		height := int(math.Ceil(math.Log2(float64(n))))
		threshold := 4 * height
		trials := c.t(c.trials) * 10
		exceed := 0
		rng := newSplitMix(uint64(c.seed) + uint64(n))
		for t := 0; t < trials; t++ {
			blocks := make([]int, n/height+1)
			for ball := 0; ball < n; ball++ {
				leaf := int(rng.next() % uint64(n))
				blocks[leaf/height]++
			}
			for _, b := range blocks {
				if b > threshold {
					exceed++
					break
				}
			}
		}
		tbl.AddRow(n, threshold, float64(exceed)/float64(trials), 1/float64(n*n))
	}
	return []harness.Table{tbl}
}

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// --- E9: adversary separation ------------------------------------------------------

func runE9(c config) []harness.Table {
	tbl := harness.Table{
		Title:   "Group elections under mismatched adversaries: E[#elected] (want ≈ k)",
		Headers: []string{"k", "Fig.1 + ascending(R/W-obl)", "sifter + readers-first(loc-obl)", "matched Fig.1", "matched sifter"},
		Notes: []string{
			"Each group election collapses to f(k)=k under the other model's adversary (Sections 2.2–2.3).",
		},
	}
	for _, k := range c.ks([]int{8, 32, 128, 512}) {
		fig1Attack := measureGE(c, k, func(s shm.Space) geWithLayout {
			g := groupelect.NewFig1(s, 1024)
			return geWithLayout{g, g.ArrayRegisterIDs()}
		}, true, false)
		siftAttack := measureGE(c, k, func(s shm.Space) geWithLayout {
			return geWithLayout{groupelect.NewSifter(s, groupelect.SifterPi(k)), nil}
		}, false, true)
		fig1Fair := measureGE(c, k, func(s shm.Space) geWithLayout {
			g := groupelect.NewFig1(s, 1024)
			return geWithLayout{g, nil}
		}, false, false)
		siftFair := measureGE(c, k, func(s shm.Space) geWithLayout {
			return geWithLayout{groupelect.NewSifter(s, groupelect.SifterPi(k)), nil}
		}, false, false)
		tbl.AddRow(k, fig1Attack, siftAttack, fig1Fair, siftFair)
	}
	return []harness.Table{tbl}
}

type geWithLayout struct {
	ge       groupelect.GroupElector
	arrayIDs []int
}

func measureGE(c config, k int, mk func(s shm.Space) geWithLayout, ascending, readersFirst bool) float64 {
	trials := c.t(40)
	sum := 0
	sys := sim.NewSystem(sim.Config{N: k, Seed: c.seed, Reuse: true})
	defer sys.Release()
	g := mk(sys)
	ids := map[int]bool{}
	for _, id := range g.arrayIDs {
		ids[id] = true
	}
	elected := 0
	body := func(h shm.Handle) {
		if g.ge.Elect(h) {
			elected++
		}
	}
	for t := 0; t < trials; t++ {
		sys.Reset(c.seed + int64(t))
		var adv sim.Adversary
		switch {
		case ascending:
			adv = sim.NewAscendingLocation(func(r int) bool { return ids[r] })
		case readersFirst:
			adv = sim.NewReadersFirst()
		default:
			adv = sim.NewRandomOblivious(c.seed + int64(t) + 7)
		}
		elected = 0
		sys.Run(adv, body)
		sum += elected
	}
	return float64(sum) / float64(trials)
}

// --- E10: cross-algorithm comparison -------------------------------------------------

func runE10(c config) []harness.Table {
	tbl := harness.Table{
		Title:   "All algorithms, one workload: E[max steps] under oblivious schedule (n=1024)",
		Headers: []string{"k", "AGTV", "RatRace-SE", "AA", "sifting", "adaptive-sift", "log*", "combined"},
		Notes: []string{
			"Expected shape: AGTV flat ≈ c·log n; RatRace grows with log k; AA flat ≈ c·loglog n;",
			"sifting flat ≈ c·loglog n; adaptive-sift grows with loglog k; log* nearly flat.",
		},
	}
	const n = 1 << 10
	factories := []struct {
		name string
		f    harness.Factory
	}{
		{"agtv", agtvFactory}, {"ratrace-se", ratraceSEFactory}, {"aa", aaFactory},
		{"sifting", siftingFactory}, {"adaptive-sifting", adaptiveSiftFactory},
		{"logstar", logStarFactory}, {"combined", combinedFactory},
	}
	for _, k := range c.ks([]int{2, 16, 128, 1024}) {
		row := []interface{}{k}
		for _, f := range factories {
			st := measure(f.name, f.f, n, k, c.t(40), c.seed, harness.Oblivious(randomObl))
			row = append(row, st.MeanMax)
		}
		tbl.AddRow(row...)
	}
	return []harness.Table{tbl}
}

// --- E11: two-process building block ---------------------------------------------------

func runE11(c config) []harness.Table {
	tbl := harness.Table{
		Title:   "2-process LE: expected max steps by schedule",
		Headers: []string{"schedule", "E[max steps]", "p99"},
		Notes:   []string{"Tromp–Vitányi [13]: O(1) expected steps against every adversary."},
	}
	advs := []struct {
		name string
		mk   func(seed int64) sim.Adversary
	}{
		{"round-robin", func(int64) sim.Adversary { return sim.NewRoundRobin() }},
		{"random", func(s int64) sim.Adversary { return sim.NewRandomOblivious(s) }},
		{"lockstep", func(int64) sim.Adversary { return sim.NewLockstep() }},
		{"solo-first", func(int64) sim.Adversary { return sim.NewSoloFirst() }},
	}
	trials := c.t(c.trials) * 10
	for _, a := range advs {
		var maxes []int
		sum := 0
		sys := sim.NewSystem(sim.Config{N: 2, Seed: c.seed, Reuse: true})
		le := twoproc.New(sys)
		body := func(h shm.Handle) {
			le.Elect(h, h.ID())
		}
		var res sim.Result
		for t := 0; t < trials; t++ {
			sys.Reset(c.seed + int64(t))
			sys.RunInto(a.mk(c.seed+int64(t)), body, &res)
			sum += res.MaxSteps
			maxes = append(maxes, res.MaxSteps)
		}
		sys.Release()
		sort.Ints(maxes)
		tbl.AddRow(a.name, float64(sum)/float64(trials), maxes[len(maxes)*99/100])
	}
	return []harness.Table{tbl}
}
