// Complexity mode: the paper's bounds as an executable gate.
//
// The sweep runs each elector across a doubling range of n with the
// simulator's RMR accounting enabled, fits the measured growth of the
// expected max step count and expected max RMR count (CC and DSM models)
// against the candidate classes of internal/complexity, and fails when a
// gated series fits a class above its ceiling. The ceilings encode the
// claims, not point estimates: the TAS fast path's solo cost must be O(1),
// its contended step growth sub-logarithmic (the paper's log* k — over
// feasible sweep ranges log* and log log are empirically inseparable, so
// the gate draws the line at "anything ≥ log fails"), and RatRace/AGTV
// must stay within O(log).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/agtv"
	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ratrace"
	"repro/internal/shm"
	"repro/internal/tas"
)

type complexityConfig struct {
	seed      int64
	trials    int
	quick     bool
	out       string
	benchPre  string // "name=ns,..." committed baseline for the bench guard
	benchPost string // same shape, measured with counters disabled
}

// tasElector adapts a TAS object to the harness's Elector interface: the
// unique caller that receives 0 is the winner.
type tasElector struct{ t *tas.TAS }

func (e tasElector) Elect(h shm.Handle) bool { return e.t.TAS(h) == 0 }

func tasFastFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	inner := core.NewLogStar(s, n)
	return tasElector{tas.New(s, tas.NewFastPath(s, inner))}, inner.IsArrayRegister
}

func tasPlainFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	inner := core.NewLogStar(s, n)
	return tasElector{tas.New(s, inner)}, inner.IsArrayRegister
}

func ratraceTASFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	return tasElector{tas.New(s, ratrace.NewSpaceEfficient(s, n))}, nil
}

func agtvTASFactory(s shm.Space, n int) (harness.Elector, func(int) bool) {
	return tasElector{tas.New(s, agtv.New(s, n))}, nil
}

// complexitySeries is one gated sweep: an elector, a contention profile,
// and the ceiling classes its fitted growth must not exceed. DSM RMRs are
// reported but never gated — the electors spin on shared registers, which
// the DSM model charges per iteration, so no sub-linear DSM claim is made.
type complexitySeries struct {
	name    string
	factory harness.Factory
	// k returns the contention for capacity n (identity for the
	// contended sweeps, 1 for the solo sweep).
	k            func(n int) int
	stepsCeiling complexity.Class
	ccCeiling    complexity.Class
	note         string
}

type fitJSON struct {
	Class     string  `json:"class"`
	A         float64 `json:"a"`
	B         float64 `json:"b"`
	NRMSE     float64 `json:"nrmse"`
	Margin    float64 `json:"margin"`
	Ambiguous bool    `json:"ambiguous"`
}

type pointJSON struct {
	N             int     `json:"n"`
	K             int     `json:"k"`
	MeanMaxSteps  float64 `json:"mean_max_steps"`
	P95MaxSteps   int     `json:"p95_max_steps"`
	MeanMaxCC     float64 `json:"mean_max_cc_rmr"`
	MeanMaxDSM    float64 `json:"mean_max_dsm_rmr"`
	MeanTotalStep float64 `json:"mean_total_steps"`
	MeanTotalCC   float64 `json:"mean_total_cc_rmr"`
	MeanTotalDSM  float64 `json:"mean_total_dsm_rmr"`
}

type seriesJSON struct {
	Name         string      `json:"name"`
	Note         string      `json:"note,omitempty"`
	Points       []pointJSON `json:"points"`
	Steps        fitJSON     `json:"steps_fit"`
	CC           fitJSON     `json:"cc_rmr_fit"`
	DSM          fitJSON     `json:"dsm_rmr_fit"`
	StepsCeiling string      `json:"steps_ceiling"`
	CCCeiling    string      `json:"cc_rmr_ceiling"`
	Pass         bool        `json:"pass"`
}

type benchGuardJSON struct {
	PreNsPerOp  map[string]float64 `json:"pre_ns_per_op,omitempty"`
	PostNsPerOp map[string]float64 `json:"post_ns_per_op,omitempty"`
	MaxRatio    float64            `json:"max_ratio,omitempty"`
	Threshold   float64            `json:"threshold"`
	Pass        bool               `json:"pass"`
}

type complexityReport struct {
	Schema     string          `json:"schema"`
	Seed       int64           `json:"seed"`
	Trials     int             `json:"trials"`
	Ns         []int           `json:"ns"`
	Series     []seriesJSON    `json:"series"`
	GatePass   bool            `json:"gate_pass"`
	BenchGuard *benchGuardJSON `json:"bench_guard,omitempty"`
}

// guardThreshold is the generous counters-off regression bound for the
// embedded benchmark guard: ns/op ratios are noisy across runs and
// machines, so only a gross regression (hot loops accidentally paying for
// accounting) should trip it.
const guardThreshold = 1.5

func runComplexity(cfg complexityConfig) error {
	maxN := 512
	trials := cfg.trials
	if cfg.quick {
		maxN = 64
		if trials > 20 {
			trials = 20
		}
	}
	var ns []int
	for n := 2; n <= maxN; n *= 2 {
		ns = append(ns, n)
	}

	series := []complexitySeries{
		{
			name: "tasfast-solo", factory: tasFastFactory, k: func(int) int { return 1 },
			stepsCeiling: complexity.O1, ccCeiling: complexity.O1,
			note: "uncontended TAS through the splitter doorway: O(1) regardless of capacity",
		},
		{
			name: "tasfast", factory: tasFastFactory, k: func(n int) int { return n },
			stepsCeiling: complexity.LogLog, ccCeiling: complexity.LogLog,
			note: "contended TAS over the log* chain: sub-logarithmic (paper: O(log* k) expected)",
		},
		{
			name: "plain", factory: tasPlainFactory, k: func(n int) int { return n },
			stepsCeiling: complexity.LogLog, ccCeiling: complexity.LogLog,
			note: "TAS over the bare log* chain, no doorway: sub-logarithmic",
		},
		{
			name: "ratrace", factory: ratraceTASFactory, k: func(n int) int { return n },
			stepsCeiling: complexity.Log, ccCeiling: complexity.Log,
			note: "TAS over space-efficient RatRace: O(log k) expected",
		},
		{
			name: "agtv", factory: agtvTASFactory, k: func(n int) int { return n },
			stepsCeiling: complexity.Log, ccCeiling: complexity.Log,
			note: "TAS over the AGTV tournament: O(log n)",
		},
	}

	report := complexityReport{
		Schema: "randtas-bench-complexity/v1",
		Seed:   cfg.seed, Trials: trials, Ns: ns,
		GatePass: true,
	}

	for _, sr := range series {
		tbl := harness.Table{
			Title:   fmt.Sprintf("complexity sweep: %s (%s)", sr.name, sr.note),
			Headers: []string{"n", "k", "E[max steps]", "E[max CC-RMR]", "E[max DSM-RMR]"},
		}
		var points []pointJSON
		steps := make([]float64, 0, len(ns))
		ccs := make([]float64, 0, len(ns))
		dsms := make([]float64, 0, len(ns))
		for _, n := range ns {
			st, err := harness.Run(harness.Spec{
				Algorithm: sr.name,
				Factory:   sr.factory,
				N:         n,
				K:         sr.k(n),
				Trials:    trials,
				BaseSeed:  cfg.seed,
				Adversary: harness.Oblivious(randomObl),
				CountRMRs: true,
			})
			if err != nil {
				return err
			}
			steps = append(steps, st.MeanMax)
			ccs = append(ccs, st.MeanMaxCC)
			dsms = append(dsms, st.MeanMaxDSM)
			points = append(points, pointJSON{
				N: n, K: sr.k(n),
				MeanMaxSteps: st.MeanMax, P95MaxSteps: st.P95Max,
				MeanMaxCC: st.MeanMaxCC, MeanMaxDSM: st.MeanMaxDSM,
				MeanTotalStep: st.MeanTotal, MeanTotalCC: st.MeanTotalCC, MeanTotalDSM: st.MeanTotalDSM,
			})
			tbl.AddRow(n, sr.k(n), st.MeanMax, st.MeanMaxCC, st.MeanMaxDSM)
		}

		stepFit, err := complexity.FitClasses(ns, steps)
		if err != nil {
			return fmt.Errorf("%s steps: %w", sr.name, err)
		}
		ccFit, err := complexity.FitClasses(ns, ccs)
		if err != nil {
			return fmt.Errorf("%s cc-rmr: %w", sr.name, err)
		}
		dsmFit, err := complexity.FitClasses(ns, dsms)
		if err != nil {
			return fmt.Errorf("%s dsm-rmr: %w", sr.name, err)
		}

		pass := !stepFit.Best.GrowsFasterThan(sr.stepsCeiling) && !ccFit.Best.GrowsFasterThan(sr.ccCeiling)
		if !pass {
			report.GatePass = false
		}
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("steps fit %s (ceiling %s), CC-RMR fit %s (ceiling %s), DSM-RMR fit %s (ungated) — %s",
				fitLabel(stepFit), sr.stepsCeiling, fitLabel(ccFit), sr.ccCeiling, fitLabel(dsmFit), passWord(pass)))
		fmt.Println(tbl.String())

		report.Series = append(report.Series, seriesJSON{
			Name: sr.name, Note: sr.note, Points: points,
			Steps: toFitJSON(stepFit), CC: toFitJSON(ccFit), DSM: toFitJSON(dsmFit),
			StepsCeiling: sr.stepsCeiling.String(), CCCeiling: sr.ccCeiling.String(),
			Pass: pass,
		})
	}

	guard, err := buildBenchGuard(cfg.benchPre, cfg.benchPost)
	if err != nil {
		return err
	}
	if guard != nil {
		report.BenchGuard = guard
		fmt.Printf("bench guard: max counters-off ratio %.3f (threshold %.2f) — %s\n",
			guard.MaxRatio, guard.Threshold, passWord(guard.Pass))
		if !guard.Pass {
			report.GatePass = false
		}
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.out)
	}
	if !report.GatePass {
		return fmt.Errorf("complexity gate failed: a fitted class exceeds its ceiling (see table notes)")
	}
	fmt.Println("complexity gate: PASS")
	return nil
}

func fitLabel(r complexity.Result) string {
	if r.Ambiguous {
		return fmt.Sprintf("%s (margin %.3f, ambiguous)", r.Best, r.Margin)
	}
	return fmt.Sprintf("%s (margin %.3f)", r.Best, r.Margin)
}

func passWord(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func toFitJSON(r complexity.Result) fitJSON {
	return fitJSON{
		Class: r.Best.String(),
		A:     r.BestFit.A, B: r.BestFit.B,
		NRMSE: r.BestFit.NRMSE, Margin: r.Margin, Ambiguous: r.Ambiguous,
	}
}

// buildBenchGuard embeds the counters-off benchmark numbers (satellite
// guard): pre is the committed PR 8 baseline, post the post-change
// measurement. Both are "name=ns,..." lists; the guard fails on a gross
// regression only (see guardThreshold).
func buildBenchGuard(pre, post string) (*benchGuardJSON, error) {
	if pre == "" && post == "" {
		return nil, nil
	}
	preM, err := parseNsMap(pre)
	if err != nil {
		return nil, fmt.Errorf("-benchpre: %w", err)
	}
	postM, err := parseNsMap(post)
	if err != nil {
		return nil, fmt.Errorf("-benchpost: %w", err)
	}
	g := &benchGuardJSON{PreNsPerOp: preM, PostNsPerOp: postM, Threshold: guardThreshold, Pass: true}
	for name, preNs := range preM {
		postNs, ok := postM[name]
		if !ok || preNs <= 0 {
			continue
		}
		if r := postNs / preNs; r > g.MaxRatio {
			g.MaxRatio = r
		}
	}
	if g.MaxRatio > guardThreshold {
		g.Pass = false
	}
	return g, nil
}

func parseNsMap(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want name=ns)", pair)
		}
		ns, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", pair, err)
		}
		m[name] = ns
	}
	return m, nil
}
