// Net mode: a loopback load generator for tasd, the TCP lock service.
//
// By default it boots an in-process server on an ephemeral loopback
// port (use -addr to target a standalone tasd) and drives it from
// -clients concurrent connections, each issuing pipelined batches of
// -pipeline ACQUIRE/RELEASE pairs spread across -locks named locks.
// Reported: total acquire/release ops/sec, batch round-trip ("wait")
// p50/p99, and the server's own counters. Mutual exclusion is verified
// server-side — every granted acquisition checks a per-lock owner word
// — and the run fails if the STATS violations counter is nonzero, if
// any operation errs, or (when we own the server) if the per-lock
// round counts don't account for every pair issued.
//
// The JSON report (default BENCH_PR4.json) extends the repository's
// benchmark trajectory: PR 2 measured the in-process lock fast path,
// PR 3 the simulator engine, PR 4 the first network-facing layer.
//
// Usage:
//
//	tasbench -mode=net [-clients C] [-pipeline D] [-locks L]
//	         [-duration D] [-addr host:port] [-netout BENCH_PR4.json]
//	         [-netfloor OPS] [-algos combined,...] [-seed S]
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
	"repro/tasclient"
)

type netConfig struct {
	clients  int
	pipeline int
	locks    int
	duration time.Duration
	addr     string // "" = in-process loopback server
	algos    string // first entry picks the server algorithm
	seed     int64
	out      string
	floor    float64 // minimum ops/sec gate (0 = off)
}

type netReport struct {
	Schema     string `json:"schema"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`

	Algorithm string `json:"algorithm"`
	Clients   int    `json:"clients"`
	Pipeline  int    `json:"pipeline_depth"`
	Locks     int    `json:"locks"`
	Duration  string `json:"duration"`

	Ops       int     `json:"ops"`
	Pairs     int     `json:"acquire_release_pairs"`
	OpsPerSec float64 `json:"ops_per_sec"`
	WaitP50Us float64 `json:"wait_p50_us"`
	WaitP99Us float64 `json:"wait_p99_us"`

	ExclusionVerified bool   `json:"exclusion_verified"`
	Violations        uint64 `json:"violations"`
	ServerRounds      uint64 `json:"server_rounds"`
	ServerContended   uint64 `json:"server_contended"`
	ArenaSlots        uint64 `json:"arena_slots"`
	ArenaPuts         uint64 `json:"arena_puts"`

	FloorOpsPerSec float64 `json:"floor_ops_per_sec,omitempty"`
}

type netWorker struct {
	pairs int
	rtts  []time.Duration
	err   error
}

func runNet(cfg netConfig) error {
	if cfg.clients < 1 || cfg.pipeline < 1 || cfg.locks < 1 {
		return fmt.Errorf("net: -clients (%d), -pipeline (%d) and -locks (%d) must all be ≥ 1",
			cfg.clients, cfg.pipeline, cfg.locks)
	}
	algos, err := throughputAlgos(cfg.algos)
	if err != nil {
		return err
	}
	algo := algos[0]

	addr := cfg.addr
	var srv *server.Server
	if addr == "" {
		srv, err = server.New(server.Config{
			Addr: "127.0.0.1:0",
			// A slot per load connection plus slack for the stats probe.
			MaxClients: cfg.clients + 2,
			Algorithm:  algo,
			Seed:       cfg.seed,
		})
		if err != nil {
			return err
		}
		if err := srv.Listen(); err != nil {
			return err
		}
		go srv.Serve()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		addr = srv.Addr().String()
	}

	fmt.Printf("### net — tasd loopback load (%s, clients=%d, pipeline=%d, locks=%d, D=%v)\n\n",
		addr, cfg.clients, cfg.pipeline, cfg.locks, cfg.duration)

	workers := make([]netWorker, cfg.clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	deadline := time.Now().Add(cfg.duration)
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &workers[w]
			c, err := tasclient.Dial(addr)
			if err != nil {
				res.err = err
				return
			}
			defer c.Close()
			// Pre-build the batch shape once; names cycle through the
			// lock set, offset per client so contention spreads.
			batch := make([]tasclient.Op, 0, 2*cfg.pipeline)
			for i := 0; i < cfg.pipeline; i++ {
				name := fmt.Sprintf("lock-%d", (w+i)%cfg.locks)
				batch = append(batch,
					tasclient.Op{Code: tasclient.OpAcquire, Name: name},
					tasclient.Op{Code: tasclient.OpRelease, Name: name},
				)
			}
			<-start
			for time.Now().Before(deadline) {
				t0 := time.Now()
				out, err := c.Do(batch)
				if err != nil {
					res.err = err
					return
				}
				for i, r := range out {
					if !r.OK {
						res.err = fmt.Errorf("batch op %d (%s): %s", i, opLabel(batch[i]), r.Err)
						return
					}
				}
				res.pairs += cfg.pipeline
				if len(res.rtts) < sampleCap {
					res.rtts = append(res.rtts, time.Since(t0))
				}
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	pairs := 0
	var rtts []time.Duration
	for w := range workers {
		if workers[w].err != nil {
			return fmt.Errorf("net client %d: %v", w, workers[w].err)
		}
		pairs += workers[w].pairs
		rtts = append(rtts, workers[w].rtts...)
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	ops := 2 * pairs // each pair is one ACQUIRE + one RELEASE
	opsPerSec := float64(ops) / elapsed.Seconds()

	// Server-side verification: the owner-word check must never have
	// tripped, and — when the server is ours alone — its per-lock round
	// counts must account for every pair the generator issued.
	probe, err := tasclient.Dial(addr)
	if err != nil {
		return fmt.Errorf("net: stats probe: %v", err)
	}
	st, err := probe.Stats()
	probe.Close()
	if err != nil {
		return fmt.Errorf("net: stats probe: %v", err)
	}
	if st.Violations != 0 {
		return fmt.Errorf("net: SERVER COUNTED %d MUTUAL-EXCLUSION VIOLATIONS", st.Violations)
	}
	var rounds, contended uint64
	for _, l := range st.Locks {
		rounds += l.Rounds
		contended += l.Contended
	}
	// A truncated snapshot (huge -locks counts) undercounts rounds by
	// construction; the equality gate only holds on a complete listing.
	if srv != nil && !st.Truncated && rounds != uint64(pairs) {
		return fmt.Errorf("net: server completed %d rounds, generator issued %d pairs (lost or phantom acquisitions)", rounds, pairs)
	}

	report := netReport{
		Schema:     "randtas-bench-net/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "loopback load on tasd: ops = ACQUIRE + RELEASE count; wait = pipelined batch round-trip; " +
			"exclusion_verified = server-side owner check clean and every pair accounted in lock rounds",
		Algorithm: algo.String(),
		Clients:   cfg.clients, Pipeline: cfg.pipeline, Locks: cfg.locks,
		Duration:          elapsed.Round(time.Millisecond).String(),
		Ops:               ops,
		Pairs:             pairs,
		OpsPerSec:         opsPerSec,
		WaitP50Us:         float64(percentile(rtts, 0.50).Microseconds()),
		WaitP99Us:         float64(percentile(rtts, 0.99).Microseconds()),
		ExclusionVerified: true,
		Violations:        st.Violations,
		ServerRounds:      rounds,
		ServerContended:   contended,
		ArenaSlots:        st.Arena.Slots,
		ArenaPuts:         st.Arena.Puts,
		FloorOpsPerSec:    cfg.floor,
	}

	tbl := harness.Table{
		Title:   "tasd loopback: sustained acquire/release traffic over TCP",
		Headers: []string{"algorithm", "ops", "ops/sec", "wait p50", "wait p99", "rounds", "contended", "violations"},
		Notes: []string{
			"ops counts ACQUIRE and RELEASE individually; wait = batch round-trip over the wire.",
			"violations = server-side owner-word check failures (must be 0).",
		},
	}
	tbl.AddRow(algo.String(), ops, fmt.Sprintf("%.0f", opsPerSec),
		percentile(rtts, 0.50).Round(time.Microsecond).String(),
		percentile(rtts, 0.99).Round(time.Microsecond).String(),
		rounds, contended, st.Violations)
	fmt.Println(tbl.String())

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)

	if cfg.floor > 0 && opsPerSec < cfg.floor {
		return fmt.Errorf("net: %.0f ops/sec below the %.0f floor", opsPerSec, cfg.floor)
	}
	return nil
}

func opLabel(op tasclient.Op) string {
	switch op.Code {
	case tasclient.OpAcquire:
		return "ACQUIRE " + op.Name
	case tasclient.OpRelease:
		return "RELEASE " + op.Name
	default:
		return op.Name
	}
}
