// Net mode: a loopback load generator for tasd, the TCP lock service —
// now covering the v2 fenced/leased surface.
//
// By default it boots an in-process server on an ephemeral loopback
// port (use -addr to target a standalone tasd) and drives it from
// -clients concurrent connections, each issuing pipelined batches of
// -pipeline operations spread across -locks named locks. Three
// scenarios exercise the redesigned path:
//
//	pairs  (default) ACQUIRE/RELEASE pairs; with -ttl every acquire
//	       carries a lease, releases are prompt, so the lease machinery
//	       rides the hot path without ever firing — the throughput
//	       regression gate for the v2 redesign.
//	churn  every -abandon-th cycle per client "forgets" its release and
//	       relies on server-side lease expiry to free the lock: sustained
//	       lease-churn, recovery verified by the run completing and the
//	       expiry counters moving.
//	storm  fencing storm: clients deliberately hold past the TTL, then
//	       release with the (now stale) token and require StatusFenced —
//	       the end-to-end fencing contract under load.
//
//	disconnect  disconnect storm: slow holders keep the locks pinned
//	       while every other client blocks in ACQUIRE and hangs up
//	       mid-wait; the run passes only if the server aborts every
//	       abandoned waiter through the elector and the arena's slot
//	       population returns to one slot per lock within budget.
//
//	flood  open-loop overload (protocol v3): the in-process server gets
//	       a deliberately small admission envelope (-max-waiters 2 per
//	       lock) and every client hammers AcquireWithin(-wait) with no
//	       backoff, taking BUSY for an answer instead of slowing down.
//	       Reports offered load vs goodput, shed rate, and admitted-op
//	       p99; fails if the server sheds nothing, grants nothing,
//	       breaches its own queue bound, violates exclusion, or leaks
//	       arena slots.
//
// Reported: total ops/sec, batch round-trip ("wait") p50/p99, lease
// expiries, fenced releases, and the server's own counters. Mutual
// exclusion is verified server-side — every granted acquisition checks
// a token-keyed per-lock owner word — and the run fails if the STATS
// violations counter is nonzero, if any operation errs unexpectedly, or
// (when we own the server, pairs scenario) if the per-lock round counts
// don't account for every pair issued.
//
// The JSON report (default BENCH_PR8.json) extends the repository's
// benchmark trajectory: PR 2 measured the in-process lock fast path,
// PR 3 the simulator engine, PR 4 the first network-facing layer, PR 5
// the fenced/leased redesign of that layer, PR 8 the overload surface
// (flood scenario: offered vs goodput, shed rate, admission bounds).
//
// A fourth mode, -mode=hold, is a tiny client for smoke tests: acquire
// one lock with a lease, hold it for -holdfor, then release and report
// whether the release was fenced (exit 3) — the CI drill that freezes a
// holder mid-hold and asserts lease recovery within the TTL.
//
// Usage:
//
//	tasbench -mode=net [-scenario pairs|churn|storm|disconnect|flood]
//	         [-clients C] [-pipeline D] [-locks L] [-duration D] [-ttl TTL]
//	         [-abandon N] [-wait D] [-addr host:port]
//	         [-netout BENCH_PR8.json]
//	         [-netfloor OPS] [-algos combined,...] [-seed S]
//	tasbench -mode=hold [-addr host:port] [-holdlock NAME] [-ttl TTL]
//	         [-holdfor D]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
	"repro/tasclient"
)

type netConfig struct {
	scenario string // pairs, churn, storm, disconnect, flood
	clients  int
	pipeline int
	locks    int
	duration time.Duration
	ttl      time.Duration // lease TTL on acquires (0 = none)
	abandon  int           // churn: forget every Nth release
	wait     time.Duration // flood: per-ACQUIRE server-side wait budget
	addr     string        // "" = in-process loopback server
	algos    string        // first entry picks the server algorithm
	seed     int64
	out      string
	floor    float64 // minimum ops/sec gate (0 = off)
}

type netReport struct {
	Schema     string `json:"schema"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`

	Algorithm string `json:"algorithm"`
	Scenario  string `json:"scenario"`
	Clients   int    `json:"clients"`
	Pipeline  int    `json:"pipeline_depth"`
	Locks     int    `json:"locks"`
	Duration  string `json:"duration"`
	LeaseTTL  string `json:"lease_ttl,omitempty"`

	Ops       int     `json:"ops"`
	Pairs     int     `json:"acquire_release_pairs"`
	OpsPerSec float64 `json:"ops_per_sec"`
	WaitP50Us float64 `json:"wait_p50_us"`
	WaitP99Us float64 `json:"wait_p99_us"`

	ExclusionVerified bool   `json:"exclusion_verified"`
	Violations        uint64 `json:"violations"`
	LeaseExpirations  uint64 `json:"lease_expirations"`
	FencedReleases    int    `json:"fenced_releases"`
	Abandoned         int    `json:"abandoned_holds"`
	Disconnects       int    `json:"disconnects,omitempty"`
	ServerRounds      uint64 `json:"server_rounds"`
	ServerContended   uint64 `json:"server_contended"`
	ServerAborts      uint64 `json:"server_aborts"`
	ServerRecovered   uint64 `json:"server_recovered"`
	ArenaSlots        uint64 `json:"arena_slots"`
	ArenaPuts         uint64 `json:"arena_puts"`
	// SlotsOutstanding is the arena's live slot population after the
	// run settled (Hits+Steals+Misses−Puts): the post-storm leak gate,
	// which must come back to one slot per named lock.
	SlotsOutstanding int64 `json:"slots_outstanding"`

	// Flood scenario (protocol v3 overload surface). Offered counts
	// every ACQUIRE the open loop issued; goodput the grants; shed_rate
	// is sheds/offered. wait_p99_us above covers admitted ops only —
	// shed answers are not latency.
	OfferedAcquires     int     `json:"offered_acquires,omitempty"`
	Goodput             int     `json:"goodput_acquires,omitempty"`
	GoodputPerSec       float64 `json:"goodput_per_sec,omitempty"`
	ShedAcquires        int     `json:"shed_acquires,omitempty"`
	ShedRate            float64 `json:"shed_rate,omitempty"`
	WaitBudget          string  `json:"wait_budget,omitempty"`
	ServerShed          uint64  `json:"server_shed,omitempty"`
	ServerDeadlineExp   uint64  `json:"server_deadline_expired,omitempty"`
	ServerSlowEvictions uint64  `json:"server_slow_client_evictions,omitempty"`
	QueueDepthHighWater int64   `json:"queue_depth_high_water,omitempty"`
	MaxWaiters          int     `json:"max_waiters,omitempty"`
	MaxInflight         int     `json:"max_inflight,omitempty"`

	FloorOpsPerSec float64 `json:"floor_ops_per_sec,omitempty"`
}

type netWorker struct {
	pairs       int
	fenced      int
	abandoned   int
	disconnects int
	granted     int // flood: ACQUIREs the server admitted and granted
	shed        int // flood: ACQUIREs answered BUSY
	rtts        []time.Duration
	err         error
}

func runNet(cfg netConfig) error {
	if cfg.clients < 1 || cfg.pipeline < 1 || cfg.locks < 1 {
		return fmt.Errorf("net: -clients (%d), -pipeline (%d) and -locks (%d) must all be ≥ 1",
			cfg.clients, cfg.pipeline, cfg.locks)
	}
	switch cfg.scenario {
	case "pairs", "churn", "storm", "disconnect", "flood":
	default:
		return fmt.Errorf("net: unknown -scenario %q (want pairs, churn, storm, disconnect or flood)", cfg.scenario)
	}
	if cfg.scenario == "churn" || cfg.scenario == "storm" {
		if cfg.ttl <= 0 {
			return fmt.Errorf("net: -scenario=%s needs a positive -ttl", cfg.scenario)
		}
	}
	if cfg.abandon < 2 {
		cfg.abandon = 8
	}
	if cfg.scenario == "flood" && cfg.wait <= 0 {
		cfg.wait = 5 * time.Millisecond
	}
	algos, err := throughputAlgos(cfg.algos)
	if err != nil {
		return err
	}
	algo := algos[0]

	addr := cfg.addr
	var srv *server.Server
	if addr == "" {
		// A slot per load connection plus slack for the stats probe; the
		// disconnect storm churns through connections faster than the
		// server reaps them, so it gets extra headroom.
		maxClients := cfg.clients + 2
		if cfg.scenario == "disconnect" {
			maxClients = 2*cfg.clients + 4
		}
		scfg := server.Config{
			Addr:       "127.0.0.1:0",
			MaxClients: maxClients,
			Algorithm:  algo,
			Seed:       cfg.seed,
		}
		if cfg.scenario == "flood" {
			// A deliberately small admission envelope so the open loop
			// saturates it: two admitted acquisitions per lock, and a
			// global budget well under clients × locks.
			scfg.MaxWaiters = 2
			scfg.MaxInflight = (3 * cfg.locks) / 2
			if scfg.MaxInflight < 4 {
				scfg.MaxInflight = 4
			}
		}
		srv, err = server.New(scfg)
		if err != nil {
			return err
		}
		if err := srv.Listen(); err != nil {
			return err
		}
		go srv.Serve()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		addr = srv.Addr().String()
	}

	fmt.Printf("### net — tasd loopback load (%s, scenario=%s, clients=%d, pipeline=%d, locks=%d, ttl=%v, D=%v)\n\n",
		addr, cfg.scenario, cfg.clients, cfg.pipeline, cfg.locks, cfg.ttl, cfg.duration)

	workers := make([]netWorker, cfg.clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	deadline := time.Now().Add(cfg.duration)
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &workers[w]
			c, err := tasclient.Dial(addr)
			if err != nil {
				res.err = err
				return
			}
			defer c.Close()
			// The barrier keeps every op inside the [t0, deadline]
			// window the ops/sec division uses.
			<-start
			switch cfg.scenario {
			case "pairs":
				res.run(c, cfg, w, deadline)
			case "churn":
				res.runChurn(c, cfg, w, deadline)
			case "storm":
				res.runStorm(c, cfg, w, deadline)
			case "disconnect":
				res.runDisconnect(c, cfg, w, deadline, addr)
			case "flood":
				res.runFlood(c, cfg, w, deadline)
			}
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	pairs, fenced, abandoned, disconnects, granted, shed := 0, 0, 0, 0, 0, 0
	var rtts []time.Duration
	for w := range workers {
		if workers[w].err != nil {
			return fmt.Errorf("net client %d: %v", w, workers[w].err)
		}
		pairs += workers[w].pairs
		fenced += workers[w].fenced
		abandoned += workers[w].abandoned
		disconnects += workers[w].disconnects
		granted += workers[w].granted
		shed += workers[w].shed
		rtts = append(rtts, workers[w].rtts...)
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	ops := 2 * pairs // each pair is one ACQUIRE + one RELEASE
	opsPerSec := float64(ops) / elapsed.Seconds()

	// The disconnect storm's exit condition is slot reclamation, not a
	// clock: poll STATS until the arena's live slot population settles
	// back to one slot per named lock — every abandoned mid-ACQUIRE
	// waiter aborted through the elector and its round recycled — or
	// fail loudly if that doesn't happen within the budget (dead-peer
	// probes are rate-limited to 50ms, so a few hundred ms is generous).
	// The flood's shed-never-holds-a-slot contract is checked the same
	// way: after the open loop stops offering, the arena must settle back
	// to baseline even though most ACQUIREs were refused at admission.
	if cfg.scenario == "disconnect" || cfg.scenario == "flood" {
		if err := awaitSlotReclaim(addr, 3*time.Second); err != nil {
			return err
		}
	}

	// Server-side verification: the owner-word check must never have
	// tripped, and — when the server is ours alone, in the clean pairs
	// scenario — its per-lock round counts must account for every pair
	// the generator issued.
	probe, err := tasclient.Dial(addr)
	if err != nil {
		return fmt.Errorf("net: stats probe: %v", err)
	}
	st, err := probe.Stats(context.Background())
	probe.Close()
	if err != nil {
		return fmt.Errorf("net: stats probe: %v", err)
	}
	if st.Violations != 0 {
		return fmt.Errorf("net: SERVER COUNTED %d MUTUAL-EXCLUSION VIOLATIONS", st.Violations)
	}
	var rounds, contended uint64
	for _, l := range st.Locks {
		rounds += l.Rounds
		contended += l.Contended
	}
	// A truncated snapshot (huge -locks counts) undercounts rounds by
	// construction; the equality gate only holds on a complete listing
	// of a clean pairs run (lease churn completes rounds via expiry).
	if srv != nil && cfg.scenario == "pairs" && !st.Truncated && rounds != uint64(pairs) {
		return fmt.Errorf("net: server completed %d rounds, generator issued %d pairs (lost or phantom acquisitions)", rounds, pairs)
	}
	switch cfg.scenario {
	case "churn":
		if st.LeaseExpirations == 0 || abandoned == 0 {
			return fmt.Errorf("net: churn scenario enforced no leases (%d expiries, %d abandoned)", st.LeaseExpirations, abandoned)
		}
	case "storm":
		if fenced == 0 {
			return fmt.Errorf("net: storm scenario observed no fenced releases")
		}
	case "disconnect":
		if disconnects == 0 {
			return fmt.Errorf("net: disconnect scenario never abandoned a blocked ACQUIRE")
		}
		if st.Aborts == 0 {
			return fmt.Errorf("net: disconnect storm drove no elector aborts — dead waiters were never reaped mid-wait")
		}
	case "flood":
		if shed == 0 || st.Shed == 0 {
			return fmt.Errorf("net: flood scenario never tripped admission control (client sheds %d, server sheds %d) — raise -clients or shrink -locks", shed, st.Shed)
		}
		if granted == 0 {
			return fmt.Errorf("net: flood scenario had zero goodput — the server shed everything")
		}
		if st.MaxWaiters > 0 && st.QueueDepthHighWater > int64(st.MaxWaiters) {
			return fmt.Errorf("net: queue depth high-water %d BREACHED the -max-waiters bound %d", st.QueueDepthHighWater, st.MaxWaiters)
		}
		if st.MaxInflight > 0 && st.InflightHighWater > int64(st.MaxInflight) {
			return fmt.Errorf("net: in-flight high-water %d BREACHED the -max-inflight bound %d", st.InflightHighWater, st.MaxInflight)
		}
	}
	outstanding := int64(st.Arena.Hits+st.Arena.Steals+st.Arena.Misses) - int64(st.Arena.Puts)

	report := netReport{
		Schema:     "randtas-bench-net/v4",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "loopback load on tasd protocol v3: ops = ACQUIRE + RELEASE count; wait = round-trip of admitted ops; " +
			"exclusion_verified = token-keyed server-side owner check clean; leases and wait budgets per the scenario",
		Algorithm: algo.String(),
		Scenario:  cfg.scenario,
		Clients:   cfg.clients, Pipeline: cfg.pipeline, Locks: cfg.locks,
		Duration:          elapsed.Round(time.Millisecond).String(),
		LeaseTTL:          cfg.ttl.String(),
		Ops:               ops,
		Pairs:             pairs,
		OpsPerSec:         opsPerSec,
		WaitP50Us:         float64(percentile(rtts, 0.50).Microseconds()),
		WaitP99Us:         float64(percentile(rtts, 0.99).Microseconds()),
		ExclusionVerified: true,
		Violations:        st.Violations,
		LeaseExpirations:  st.LeaseExpirations,
		FencedReleases:    fenced,
		Abandoned:         abandoned,
		Disconnects:       disconnects,
		ServerRounds:      rounds,
		ServerContended:   contended,
		ServerAborts:      st.Aborts,
		ServerRecovered:   st.Recovered,
		ArenaSlots:        st.Arena.Slots,
		ArenaPuts:         st.Arena.Puts,
		SlotsOutstanding:  outstanding,
		FloorOpsPerSec:    cfg.floor,
	}
	if cfg.scenario == "flood" {
		offered := granted + shed
		report.OfferedAcquires = offered
		report.Goodput = granted
		report.GoodputPerSec = float64(granted) / elapsed.Seconds()
		report.ShedAcquires = shed
		if offered > 0 {
			report.ShedRate = float64(shed) / float64(offered)
		}
		report.WaitBudget = cfg.wait.String()
		report.ServerShed = st.Shed
		report.ServerDeadlineExp = st.DeadlineExpired
		report.ServerSlowEvictions = st.SlowClientEvictions
		report.QueueDepthHighWater = st.QueueDepthHighWater
		report.MaxWaiters = st.MaxWaiters
		report.MaxInflight = st.MaxInflight
	}

	tbl := harness.Table{
		Title:   "tasd loopback: sustained lock traffic over TCP (protocol v3)",
		Headers: []string{"algorithm", "scenario", "ops", "ops/sec", "wait p50", "wait p99", "rounds", "expiries", "fenced", "aborts", "slots out", "violations"},
		Notes: []string{
			"ops counts ACQUIRE and RELEASE individually; wait = batch round-trip over the wire.",
			"violations = server-side token-keyed owner check failures (must be 0).",
			"aborts = waiters cancelled through the elector; slots out = live arena slots after the run (one per lock).",
		},
	}
	tbl.AddRow(algo.String(), cfg.scenario, ops, fmt.Sprintf("%.0f", opsPerSec),
		percentile(rtts, 0.50).Round(time.Microsecond).String(),
		percentile(rtts, 0.99).Round(time.Microsecond).String(),
		rounds, st.LeaseExpirations, fenced, st.Aborts, outstanding, st.Violations)
	fmt.Println(tbl.String())
	if cfg.scenario == "flood" {
		offered := granted + shed
		fmt.Printf("flood: offered %d ACQUIREs (%.0f/sec), goodput %d (%.0f/sec), shed %d (%.1f%% — client) / %d (server), "+
			"deadline-expired %d, queue high-water %d/%d, in-flight high-water %d/%d, wait budget %v\n\n",
			offered, float64(offered)/elapsed.Seconds(),
			granted, float64(granted)/elapsed.Seconds(),
			shed, 100*report.ShedRate, st.Shed,
			st.DeadlineExpired, st.QueueDepthHighWater, st.MaxWaiters,
			st.InflightHighWater, st.MaxInflight, cfg.wait)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)

	if cfg.floor > 0 && opsPerSec < cfg.floor {
		return fmt.Errorf("net: %.0f ops/sec below the %.0f floor", opsPerSec, cfg.floor)
	}
	return nil
}

// run is the pairs scenario: pipelined ACQUIRE(ttl)/RELEASE(token)
// pairs, releases prompt — leases never fire, the throughput gate.
func (res *netWorker) run(c *tasclient.Client, cfg netConfig, w int, deadline time.Time) {
	// Pre-build the batch shape once; names cycle through the lock set,
	// offset per client so contention spreads. Tokens are granted per
	// batch, so RELEASE uses the v1-style server-tracked token (0) —
	// the server still verifies its own record.
	batch := make([]tasclient.Op, 0, 2*cfg.pipeline)
	for i := 0; i < cfg.pipeline; i++ {
		name := fmt.Sprintf("lock-%d", (w+i)%cfg.locks)
		batch = append(batch,
			tasclient.Op{Code: tasclient.OpAcquire, Name: name, TTL: cfg.ttl},
			tasclient.Op{Code: tasclient.OpRelease, Name: name},
		)
	}
	for time.Now().Before(deadline) {
		t0 := time.Now()
		out, err := c.Do(context.Background(), batch)
		if err != nil {
			res.err = err
			return
		}
		for i, r := range out {
			if !r.OK {
				res.err = fmt.Errorf("batch op %d (%s): %+v", i, opLabel(batch[i]), r)
				return
			}
		}
		res.pairs += cfg.pipeline
		if len(res.rtts) < sampleCap {
			res.rtts = append(res.rtts, time.Since(t0))
		}
	}
}

// runChurn is the lease-churn scenario: every cfg.abandon-th cycle the
// client skips its release, leaving recovery to the server's lease
// sweeper. Abandoned grants surface on the next acquire of the same
// name (possibly blocking until expiry), so the run as a whole proves
// recovery within TTL under sustained churn.
func (res *netWorker) runChurn(c *tasclient.Client, cfg netConfig, w int, deadline time.Time) {
	ctx := context.Background()
	cycle := 0
	// A connected client that abandons a grant still holds it until the
	// sweeper fences it; re-acquiring the same name before then is a
	// (correctly rejected) reentrant acquire. Track our own abandoned
	// names and steer clear until the lease has surely lapsed.
	abandoned := map[string]time.Time{}
	grace := cfg.ttl * 3
	for time.Now().Before(deadline) {
		name := fmt.Sprintf("lock-%d", (w+cycle)%cfg.locks)
		if at, ok := abandoned[name]; ok {
			if time.Since(at) < grace {
				cycle++
				time.Sleep(time.Millisecond)
				continue
			}
			delete(abandoned, name)
		}
		t0 := time.Now()
		tok, err := c.Acquire(ctx, name, cfg.ttl)
		if err != nil {
			res.err = fmt.Errorf("churn acquire %s: %v", name, err)
			return
		}
		cycle++
		if cycle%cfg.abandon == 0 {
			res.abandoned++ // leave it to the lease sweeper
			abandoned[name] = time.Now()
			continue
		}
		if err := c.Release(ctx, name, tok); err != nil {
			if errors.Is(err, tasclient.ErrFenced) {
				res.fenced++ // sweeper got there first; legal under churn
				continue
			}
			res.err = fmt.Errorf("churn release %s: %v", name, err)
			return
		}
		res.pairs++
		if len(res.rtts) < sampleCap {
			res.rtts = append(res.rtts, time.Since(t0))
		}
	}
}

// runStorm is the fencing storm: hold past the TTL on purpose, then
// release with the stale token and demand StatusFenced. Every client
// does this concurrently on the shared lock set.
func (res *netWorker) runStorm(c *tasclient.Client, cfg netConfig, w int, deadline time.Time) {
	ctx := context.Background()
	cycle := 0
	for time.Now().Before(deadline) {
		name := fmt.Sprintf("lock-%d", (w+cycle)%cfg.locks)
		cycle++
		t0 := time.Now()
		tok, err := c.Acquire(ctx, name, cfg.ttl)
		if err != nil {
			res.err = fmt.Errorf("storm acquire %s: %v", name, err)
			return
		}
		time.Sleep(cfg.ttl + cfg.ttl/2) // deliberately outlive the lease
		err = c.Release(ctx, name, tok)
		switch {
		case errors.Is(err, tasclient.ErrFenced):
			res.fenced++
		case err == nil:
			// The sweeper may not have fired yet on a quiet lock; a
			// clean release is acceptable, just not countable.
			res.pairs++
		default:
			res.err = fmt.Errorf("storm release %s: %v", name, err)
			return
		}
		if len(res.rtts) < sampleCap {
			res.rtts = append(res.rtts, time.Since(t0))
		}
	}
}

// runDisconnect is the disconnect-storm drill: worker 0 per lock plays
// a slow holder (its grants outlast the server's 50ms dead-peer probe
// rate limit), while every other worker blocks in ACQUIRE behind it and
// then hangs up mid-wait — a context deadline breaks the connection
// without a frame boundary, exactly like a crashed client. The server
// must abort each abandoned waiter through the elector and recycle its
// round; runNet verifies that afterwards via STATS (aborts > 0, slot
// population back to one per lock, zero violations).
func (res *netWorker) runDisconnect(c *tasclient.Client, cfg netConfig, w int, deadline time.Time, addr string) {
	bg := context.Background()
	if w < cfg.locks && w < cfg.clients/2 {
		// Holder: keep lock-w held in long beats so waiters pile up and
		// their hangups are discovered mid-wait, not at grant time.
		name := fmt.Sprintf("lock-%d", w)
		for time.Now().Before(deadline) {
			tok, err := c.Acquire(bg, name, 0)
			if err != nil {
				res.err = fmt.Errorf("disconnect holder %s: %v", name, err)
				return
			}
			time.Sleep(80 * time.Millisecond)
			if err := c.Release(bg, name, tok); err != nil {
				res.err = fmt.Errorf("disconnect holder release %s: %v", name, err)
				return
			}
			res.pairs++
		}
		return
	}
	// Stormer: block behind a holder, hang up mid-wait, redial, repeat.
	cycle := 0
	for time.Now().Before(deadline) {
		name := fmt.Sprintf("lock-%d", (w+cycle)%cfg.locks)
		cycle++
		ctx, cancel := context.WithTimeout(bg, time.Duration(5+w%7)*time.Millisecond)
		tok, err := c.Acquire(ctx, name, 0)
		cancel()
		if err == nil {
			// Slipped in between holder beats; release and go again.
			if rerr := c.Release(bg, name, tok); rerr == nil {
				res.pairs++
			}
			continue
		}
		// The timed-out ACQUIRE abandoned the stream mid-operation; the
		// close below is what the server's dead-peer probe discovers.
		res.disconnects++
		c.Close()
		c = nil
		for time.Now().Before(deadline) {
			if c, err = tasclient.Dial(addr); err == nil {
				break
			}
			// Transiently full while the server reaps our corpses.
			time.Sleep(2 * time.Millisecond)
		}
		if c == nil {
			return
		}
	}
	if c != nil {
		c.Close()
	}
}

// runFlood is the open-loop overload drill: every worker offers
// AcquireWithin(cfg.wait) as fast as the wire turns around, takes BUSY
// for an answer, and never backs off — offered load is whatever the
// connection can carry, not what the server can serve. Grants are
// released promptly (goodput), sheds go straight back to offering. Only
// admitted operations contribute RTT samples; a shed is an answer, not
// a latency. runNet verifies afterwards that the server both shed and
// granted, honored its own admission bounds, and reclaimed every slot.
func (res *netWorker) runFlood(c *tasclient.Client, cfg netConfig, w int, deadline time.Time) {
	bg := context.Background()
	cycle := 0
	for time.Now().Before(deadline) {
		name := fmt.Sprintf("lock-%d", (w+cycle)%cfg.locks)
		cycle++
		t0 := time.Now()
		tok, err := c.AcquireWithin(bg, name, cfg.ttl, cfg.wait)
		switch {
		case err == nil:
			res.granted++
			if len(res.rtts) < sampleCap {
				res.rtts = append(res.rtts, time.Since(t0))
			}
			if rerr := c.Release(bg, name, tok); rerr != nil {
				res.err = fmt.Errorf("flood release %s: %v", name, rerr)
				return
			}
			res.pairs++
		case errors.Is(err, tasclient.ErrBusy):
			res.shed++ // the degradation contract: a clean refusal, connection intact
		default:
			res.err = fmt.Errorf("flood acquire %s: %v", name, err)
			return
		}
	}
}

// awaitSlotReclaim polls STATS until the arena's live slot population
// (Gets minus Puts) settles to the steady-state baseline of one slot
// per live named lock plus one per live election — both read from the
// same snapshot, so the drill also works against a shared server that
// has names from earlier scenarios. An unrecovered winnerless round
// would pin its slot and hold the population above baseline forever,
// so equality within the budget is the abort-leaves-no-residue gate.
func awaitSlotReclaim(addr string, budget time.Duration) error {
	start := time.Now()
	last, want := int64(-1), int64(-1)
	for {
		// Dial failures are transient right after the storm (connection
		// slots still held by corpses the server is reaping), so only
		// the budget turns them fatal.
		if probe, err := tasclient.Dial(addr); err == nil {
			st, serr := probe.Stats(context.Background())
			probe.Close()
			if serr == nil {
				if st.Truncated {
					return fmt.Errorf("net: STATS truncated — too many names to compute the slot baseline")
				}
				last = int64(st.Arena.Hits+st.Arena.Steals+st.Arena.Misses) - int64(st.Arena.Puts)
				want = int64(len(st.Locks) + len(st.Elections))
				if last == want {
					return nil
				}
			}
		}
		if time.Since(start) > budget {
			return fmt.Errorf("net: arena stuck at %d live slots (want %d) %v after the disconnect storm — aborted waiters leaked",
				last, want, budget)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runHold is -mode=hold: the smoke-test client. It acquires one lock
// with a lease, holds it for holdfor (surviving SIGSTOP — the point of
// the drill), then releases. Exit codes: 0 clean release, 3 the release
// was fenced (the lease expired mid-hold).
func runHold(addr, lock string, ttl, holdfor time.Duration) error {
	if addr == "" {
		return fmt.Errorf("hold: -addr is required")
	}
	c, err := tasclient.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tok, err := c.Acquire(ctx, lock, ttl)
	if err != nil {
		return err
	}
	fmt.Printf("hold: acquired %q token %d (ttl %v), holding %v\n", lock, tok, ttl, holdfor)
	if holdfor > 0 {
		time.Sleep(holdfor)
	}
	if err := c.Release(context.Background(), lock, tok); err != nil {
		if errors.Is(err, tasclient.ErrFenced) {
			fmt.Printf("hold: release fenced — the lease expired mid-hold\n")
			os.Exit(3)
		}
		return err
	}
	fmt.Printf("hold: released cleanly\n")
	return nil
}

func opLabel(op tasclient.Op) string {
	switch op.Code {
	case tasclient.OpAcquire:
		return "ACQUIRE " + op.Name
	case tasclient.OpRelease:
		return "RELEASE " + op.Name
	default:
		return op.Name
	}
}
