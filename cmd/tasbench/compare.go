// Compare mode: the before/after harness for the concurrent-backend
// fast-path overhaul (PR 2). It measures the same Mutex workload twice
// inside one binary —
//
//   - baseline:  ArenaOptions.NoFastPath, i.e. the portable interface
//     code paths of the original arena: interface-dispatched election
//     steps, no uncontended doorway, full-footprint register resets on
//     recycle;
//   - optimized: the default fast path: devirtualized steps, the
//     constant-step doorway, dirty-window resets;
//
// and emits both numbers as JSON (default BENCH_PR2.json), seeding the
// repository's benchmark trajectory. Two workloads per algorithm: a
// single-goroutine Lock/Unlock loop (uncontended ns/op, the dominant
// serving regime of a well-sharded lock) and the multi-goroutine
// throughput run of -mode=throughput (ops/sec).
//
// The -preref flag records externally measured pre-PR numbers (from
// `go test -bench=Mutex` at the previous commit) alongside the
// in-binary baseline, so the committed artifact carries both the
// emulated and the true historical baseline.
//
// Usage:
//
//	tasbench -mode=compare [-goroutines G] [-duration D] [-algos a,b,c]
//	         [-out BENCH_PR2.json] [-preref combined=35796,ratrace=427]
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	randtas "repro"
	"repro/internal/harness"
)

type compareConfig struct {
	goroutines int
	duration   time.Duration
	algos      string
	shards     int
	prealloc   int
	work       int
	seed       int64
	out        string
	preref     string

	// Sim-throughput section (see simcompare.go).
	simTrials int
	simOut    string
	simPreRef float64
}

// speedupFloor gates the compare run: the optimized side must not be
// slower than the baseline beyond measurement noise, or the run exits
// non-zero (this is what makes the CI bench job a regression gate, not
// just a report).
const speedupFloor = 0.90

// compareSide is one measured configuration (baseline or optimized).
type compareSide struct {
	UncontendedNsPerOp float64 `json:"uncontended_ns_per_op"`
	UncontendedOps     int     `json:"uncontended_ops"`
	ThroughputOpsSec   float64 `json:"throughput_ops_per_sec"`
	StepsPerOp         float64 `json:"steps_per_op"`
}

type compareAlgo struct {
	Algorithm          string      `json:"algorithm"`
	Baseline           compareSide `json:"baseline"`
	Optimized          compareSide `json:"optimized"`
	UncontendedSpeedup float64     `json:"uncontended_speedup"`
	ThroughputSpeedup  float64     `json:"throughput_speedup"`
	// PrePRReferenceNsPerOp is the externally measured BenchmarkMutex
	// ns/op at the pre-PR commit on the same machine (via -preref);
	// zero when not supplied.
	PrePRReferenceNsPerOp float64 `json:"pre_pr_reference_ns_per_op,omitempty"`
}

type compareReport struct {
	Schema     string        `json:"schema"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Goroutines int           `json:"goroutines"`
	Duration   string        `json:"duration_per_measurement"`
	Note       string        `json:"note"`
	Results    []compareAlgo `json:"results"`
}

// measureUncontended runs a single proc's Lock/Unlock loop for
// cfg.duration, with cfg.work spin iterations inside the critical
// section (matching the throughput leg's regime).
func measureUncontended(cfg compareConfig, algo randtas.Algorithm, noFastPath bool) (compareSide, error) {
	m, err := randtas.NewMutex(randtas.ArenaOptions{
		Options:    randtas.Options{N: 2, Algorithm: algo, Seed: cfg.seed},
		Shards:     cfg.shards,
		Prealloc:   cfg.prealloc,
		NoFastPath: noFastPath,
	})
	if err != nil {
		return compareSide{}, err
	}
	p := m.Proc(0)
	ctx := context.Background()
	ops := 0
	spin := 0.0
	start := time.Now()
	deadline := start.Add(cfg.duration)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ { // amortize the clock read
			tok, err := p.Lock(ctx)
			if err != nil {
				return compareSide{}, err
			}
			for w := 0; w < cfg.work; w++ {
				spin += float64(w)
			}
			if err := p.Unlock(tok); err != nil {
				return compareSide{}, err
			}
			ops++
		}
	}
	elapsed := time.Since(start)
	_ = spin
	return compareSide{
		UncontendedNsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
		UncontendedOps:     ops,
		StepsPerOp:         float64(p.Steps()) / float64(ops),
	}, nil
}

// measureSide fills one compareSide: the uncontended loop plus the
// contended throughput run.
func measureSide(cfg compareConfig, algo randtas.Algorithm, noFastPath bool) (compareSide, error) {
	side, err := measureUncontended(cfg, algo, noFastPath)
	if err != nil {
		return compareSide{}, err
	}
	res, err := runThroughputOne(throughputConfig{
		goroutines: cfg.goroutines,
		duration:   cfg.duration,
		shards:     cfg.shards,
		prealloc:   cfg.prealloc,
		work:       cfg.work,
		seed:       cfg.seed,
		noFastPath: noFastPath,
	}, algo)
	if err != nil {
		return compareSide{}, err
	}
	side.ThroughputOpsSec = float64(res.ops) / res.elapsed.Seconds()
	return side, nil
}

// parsePreref parses "combined=35796,ratrace=427" into a name→ns map.
func parsePreref(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -preref entry %q (want algo=ns)", kv)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -preref value %q: %v", kv, err)
		}
		out[parts[0]] = v
	}
	return out, nil
}

func runCompare(cfg compareConfig) error {
	algos, err := throughputAlgos(cfg.algos)
	if err != nil {
		return err
	}
	preref, err := parsePreref(cfg.preref)
	if err != nil {
		return err
	}
	report := compareReport{
		Schema:     "randtas-bench-compare/v1",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Goroutines: cfg.goroutines,
		Duration:   cfg.duration.String(),
		Note: "baseline = ArenaOptions.NoFastPath (interface dispatch, no doorway, full resets); " +
			"optimized = default fast path (devirtualized steps, uncontended doorway, dirty-window resets)",
	}
	tbl := harness.Table{
		Title: "Fast-path overhaul: baseline (NoFastPath) vs optimized, same binary",
		Headers: []string{"algorithm", "uncont ns/op (base)", "uncont ns/op (opt)", "speedup",
			"ops/sec (base)", "ops/sec (opt)", "speedup"},
		Notes: []string{
			"uncontended: one goroutine Lock/Unlock; throughput: -mode=throughput workload.",
		},
	}
	for _, algo := range algos {
		base, err := measureSide(cfg, algo, true)
		if err != nil {
			return err
		}
		opt, err := measureSide(cfg, algo, false)
		if err != nil {
			return err
		}
		r := compareAlgo{
			Algorithm:             algo.String(),
			Baseline:              base,
			Optimized:             opt,
			UncontendedSpeedup:    base.UncontendedNsPerOp / opt.UncontendedNsPerOp,
			ThroughputSpeedup:     opt.ThroughputOpsSec / base.ThroughputOpsSec,
			PrePRReferenceNsPerOp: preref[algo.String()],
		}
		report.Results = append(report.Results, r)
		tbl.AddRow(algo.String(),
			fmt.Sprintf("%.1f", base.UncontendedNsPerOp),
			fmt.Sprintf("%.1f", opt.UncontendedNsPerOp),
			fmt.Sprintf("%.2fx", r.UncontendedSpeedup),
			fmt.Sprintf("%.0f", base.ThroughputOpsSec),
			fmt.Sprintf("%.0f", opt.ThroughputOpsSec),
			fmt.Sprintf("%.2fx", r.ThroughputSpeedup),
		)
	}
	fmt.Println(tbl.String())

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", cfg.out)

	// Regression gate: the fast path must not lose to its own baseline
	// (beyond measurement noise). Checked after the report is written so
	// a failing run still leaves the evidence behind.
	var regressions []string
	for _, r := range report.Results {
		if r.UncontendedSpeedup < speedupFloor {
			regressions = append(regressions, fmt.Sprintf("%s uncontended %.2fx", r.Algorithm, r.UncontendedSpeedup))
		}
		if r.ThroughputSpeedup < speedupFloor {
			regressions = append(regressions, fmt.Sprintf("%s throughput %.2fx", r.Algorithm, r.ThroughputSpeedup))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("fast path slower than NoFastPath baseline (floor %.2fx): %s",
			speedupFloor, strings.Join(regressions, ", "))
	}
	return nil
}
