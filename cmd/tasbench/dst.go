package main

import (
	"fmt"
	"time"

	"repro/internal/dst"
	"repro/internal/dstrun"
)

// dst mode drives the deterministic whole-service simulation
// (internal/dstrun) over a seed corpus: tasd plus a fleet of clients, a
// chaos actor and a wire-frame fuzzer under one seeded virtual clock.
// The first seed is run twice and byte-compared — the replay guarantee
// the rest of the corpus relies on. Every failing seed is printed as a
// ready-to-run replay command line, and any failure exits nonzero.

type dstConfig struct {
	seeds    int    // corpus size
	base     uint64 // first seed; the corpus is base, base+1, ...
	scenario string // one scenario name, or "all" to rotate
	ops      int    // per-client operations (0 = dstrun default)
	verbose  bool   // one line per seed instead of a summary
}

// dstScenarios is the rotation order for -dstscenario=all.
var dstScenarios = []dstrun.Scenario{
	dstrun.ScenarioMixed,
	dstrun.ScenarioLocks,
	dstrun.ScenarioChaos,
	dstrun.ScenarioElect,
	dstrun.ScenarioFuzz,
	dstrun.ScenarioAbortStorm,
	dstrun.ScenarioOverload,
}

// dstFaults is the byte-level fault mix applied to every fourth seed,
// so the corpus covers both the fault-free fabric (where the strict
// expectations assert) and a lossy one (where only the unconditional
// invariants can).
var dstFaults = dst.Faults{
	DelayMin:     20 * time.Microsecond,
	DelayMax:     800 * time.Microsecond,
	ConnectDelay: 100 * time.Microsecond,
	DropProb:     0.02,
	DupProb:      0.02,
	CorruptProb:  0.02,
	ResetProb:    0.005,
}

func runDST(cfg dstConfig) error {
	if cfg.seeds <= 0 {
		cfg.seeds = 64
	}
	start := time.Now()
	failed := 0
	for i := 0; i < cfg.seeds; i++ {
		seed := cfg.base + uint64(i)
		sc := dstrun.Scenario(cfg.scenario)
		if cfg.scenario == "" || cfg.scenario == "all" {
			sc = dstScenarios[i%len(dstScenarios)]
		}
		rc := dstrun.Config{Seed: seed, Scenario: sc, Ops: cfg.ops}
		if i%4 == 3 {
			rc.Faults = dstFaults
		}
		rep, err := dstrun.Run(rc)
		if err != nil {
			return fmt.Errorf("dst: setup failed on seed %#x: %v", seed, err)
		}
		if i == 0 {
			// Replay check: the same seed must reproduce the identical
			// report, trace hash included.
			rep2, err := dstrun.Run(rc)
			if err != nil {
				return fmt.Errorf("dst: replay setup failed on seed %#x: %v", seed, err)
			}
			if a, b := fmt.Sprintf("%+v", rep), fmt.Sprintf("%+v", rep2); a != b {
				fmt.Printf("REPLAY DIVERGED on seed %#x scenario %s:\n  run1: %s\n  run2: %s\n", seed, sc, a, b)
				failed++
			}
		}
		if rep.Failed() {
			failed++
			fmt.Printf("FAIL seed %#x scenario %-5s  violations=%d errors=%q\n", seed, sc, rep.Violations, rep.Errors)
			fmt.Printf("  replay: tasbench -mode=dst -dstseeds 1 -seed %d -dstscenario %s\n", int64(seed), sc)
		} else if cfg.verbose {
			fmt.Printf("ok   seed %#x scenario %-5s  events=%-7d hash=%#016x virtual=%-10v acq=%d rel=%d ext=%d elect=%d fuzz=%d exp=%d evict=%d abort=%d\n",
				seed, sc, rep.Events, rep.TraceHash, rep.Virtual,
				rep.Acquires, rep.Releases, rep.Extends, rep.Elections, rep.FuzzFrames,
				rep.Expiries, rep.Evictions, rep.Aborts)
		}
	}
	fmt.Printf("dst: %d/%d seeds passed (base %#x, %v, replay check on first seed)\n",
		cfg.seeds-failed, cfg.seeds, cfg.base, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("dst: %d seed(s) failed — replay with the printed command lines", failed)
	}
	return nil
}
