// Throughput mode: a sustained load generator for the reusable Mutex
// built on the arena subsystem. Unlike the experiment tables (which run
// on the deterministic simulator), this mode hammers real goroutines on
// real atomics and reports serving metrics: ops/sec, acquire-wait and
// hold-time percentiles, shared-memory steps per op, and arena recycling
// behaviour.
//
// Usage:
//
//	tasbench -mode=throughput [-goroutines G] [-duration D] [-algos a,b,c]
//	         [-shards S] [-prealloc P] [-work W]
//
// Mutual exclusion is verified continuously: every critical section
// checks an owner word and increments a counter that only the lock
// serializes; any violation aborts with a non-zero exit.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	randtas "repro"
	"repro/internal/harness"
)

type throughputConfig struct {
	goroutines int
	duration   time.Duration
	algos      string
	shards     int
	prealloc   int
	work       int
	seed       int64
	noFastPath bool // compare mode: force the portable baseline paths
}

// throughputAlgos parses the -algos list against the public algorithm
// names.
func throughputAlgos(list string) ([]randtas.Algorithm, error) {
	var out []randtas.Algorithm
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, err := randtas.ParseAlgorithm(name)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -algos list")
	}
	return out, nil
}

// sampleCap bounds per-worker latency sample memory; past the cap the
// run keeps counting ops but stops recording new samples.
const sampleCap = 1 << 18

type workerResult struct {
	ops   int
	steps int
	waits []time.Duration
	holds []time.Duration
}

type throughputResult struct {
	algo      randtas.Algorithm
	ops       int
	steps     int
	elapsed   time.Duration
	waits     []time.Duration
	holds     []time.Duration
	mutex     randtas.MutexStats
	pool      randtas.ArenaShardStats
	shardDump []randtas.ArenaShardStats
}

// runThroughputOne drives one algorithm's Mutex from cfg.goroutines
// workers for cfg.duration and merges the per-worker measurements.
func runThroughputOne(cfg throughputConfig, algo randtas.Algorithm) (throughputResult, error) {
	arena, err := randtas.NewArena(randtas.ArenaOptions{
		Options:    randtas.Options{N: cfg.goroutines, Algorithm: algo, Seed: cfg.seed},
		Shards:     cfg.shards,
		Prealloc:   cfg.prealloc,
		NoFastPath: cfg.noFastPath,
	})
	if err != nil {
		return throughputResult{}, err
	}
	m := arena.NewMutex()

	var (
		owner     atomic.Int64 // holder's id+1; 0 when free
		guarded   int          // serialized by m alone
		violation atomic.Bool
		start     = make(chan struct{})
		results   = make([]workerResult, cfg.goroutines)
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(cfg.duration)
	for w := 0; w < cfg.goroutines; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := m.Proc(id)
			res := workerResult{}
			spin := 0.0
			<-start
			ctx := context.Background()
			for time.Now().Before(deadline) && !violation.Load() {
				t0 := time.Now()
				tok, err := p.Lock(ctx)
				if err != nil {
					violation.Store(true)
					return
				}
				t1 := time.Now()
				if !owner.CompareAndSwap(0, int64(id)+1) {
					violation.Store(true)
					p.Unlock(tok)
					return
				}
				guarded++
				for i := 0; i < cfg.work; i++ {
					spin += float64(i) // simulated critical-section work
				}
				owner.Store(0)
				t2 := time.Now()
				if err := p.Unlock(tok); err != nil {
					violation.Store(true)
					return
				}
				res.ops++
				if len(res.waits) < sampleCap {
					res.waits = append(res.waits, t1.Sub(t0))
					res.holds = append(res.holds, t2.Sub(t1))
				}
			}
			_ = spin
			res.steps = p.Steps()
			results[id] = res
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	if violation.Load() {
		return throughputResult{}, fmt.Errorf("%s: MUTUAL EXCLUSION VIOLATION detected", algo)
	}
	out := throughputResult{algo: algo, elapsed: elapsed, mutex: m.Stats(),
		pool: arena.Stats(), shardDump: arena.ShardStats()}
	for _, r := range results {
		out.ops += r.ops
		out.steps += r.steps
		out.waits = append(out.waits, r.waits...)
		out.holds = append(out.holds, r.holds...)
	}
	if guarded != out.ops {
		return throughputResult{}, fmt.Errorf("%s: guarded counter %d != ops %d (lost update ⇒ exclusion broken)", algo, guarded, out.ops)
	}
	return out, nil
}

func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	i := int(p * float64(len(d)-1))
	return d[i]
}

func runThroughput(cfg throughputConfig) error {
	algos, err := throughputAlgos(cfg.algos)
	if err != nil {
		return err
	}
	fmt.Printf("### throughput — reusable Mutex on the TAS arena (G=%d, D=%v, work=%d)\n\n",
		cfg.goroutines, cfg.duration, cfg.work)
	tbl := harness.Table{
		Title: "Sustained Lock/Unlock traffic per algorithm",
		Headers: []string{"algorithm", "ops", "ops/sec", "wait p50", "wait p99",
			"hold p50", "hold p99", "steps/op", "lost TAS/op", "slots", "misses"},
		Notes: []string{
			"wait = Lock latency; hold = critical-section occupancy; steps = shared-memory ops.",
			"slots/misses: arena pool size and construction fallbacks — recycling keeps both O(G).",
		},
	}
	for _, algo := range algos {
		res, err := runThroughputOne(cfg, algo)
		if err != nil {
			return err
		}
		sort.Slice(res.waits, func(i, j int) bool { return res.waits[i] < res.waits[j] })
		sort.Slice(res.holds, func(i, j int) bool { return res.holds[i] < res.holds[j] })
		opsPerSec := float64(res.ops) / res.elapsed.Seconds()
		tbl.AddRow(
			algo.String(),
			res.ops,
			fmt.Sprintf("%.0f", opsPerSec),
			percentile(res.waits, 0.50).Round(time.Nanosecond).String(),
			percentile(res.waits, 0.99).Round(time.Nanosecond).String(),
			percentile(res.holds, 0.50).Round(time.Nanosecond).String(),
			percentile(res.holds, 0.99).Round(time.Nanosecond).String(),
			fmt.Sprintf("%.1f", float64(res.steps)/float64(max(res.ops, 1))),
			fmt.Sprintf("%.2f", float64(res.mutex.Contended)/float64(max(res.ops, 1))),
			res.pool.Slots,
			res.pool.Misses,
		)
	}
	fmt.Println(tbl.String())
	return nil
}

// fatalf prints to stderr and exits non-zero; throughput failures must
// fail CI.
func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
