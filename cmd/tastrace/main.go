// Command tastrace prints an annotated step-by-step execution trace of a
// leader election under a chosen adversary — a teaching and debugging aid
// for the simulator and the algorithms.
//
// Traces are deterministic in (seed, adversary, algorithm) under the
// engine v2 seed→schedule mapping (splitmix64 coin streams); traces
// recorded before the engine overhaul replay under the same flags but
// with different coin outcomes.
//
// Usage:
//
//	tastrace [-k 4] [-n 8] [-seed 1] [-algo logstar] [-adv roundrobin] [-max 200]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agtv"
	"repro/internal/core"
	"repro/internal/ratrace"
	"repro/internal/shm"
	"repro/internal/sim"
)

func main() {
	var (
		k       = flag.Int("k", 4, "participating processes")
		n       = flag.Int("n", 8, "object capacity")
		seed    = flag.Int64("seed", 1, "coin seed")
		algo    = flag.String("algo", "logstar", "logstar, sifting, adaptive, ratrace, agtv")
		advName = flag.String("adv", "roundrobin", "roundrobin, random, lockstep, solofirst")
		maxStep = flag.Int("max", 200, "stop after this many steps")
	)
	flag.Parse()

	steps := 0
	cfg := sim.Config{N: *k, Seed: *seed, StepHook: func(ev sim.StepEvent) {
		steps++
		fmt.Printf("%4d  p%-3d %-5s r%-4d = %d\n", ev.Time, ev.PID, ev.Kind, ev.Reg, ev.Val)
	}}
	sys := sim.NewSystem(cfg)

	var le interface {
		Elect(h shm.Handle) bool
	}
	switch *algo {
	case "logstar":
		le = core.NewLogStar(sys, *n)
	case "sifting":
		le = core.NewSifting(sys, *n)
	case "adaptive":
		le = core.NewAdaptiveSifting(sys, *n)
	case "ratrace":
		le = ratrace.NewSpaceEfficient(sys, *n)
	case "agtv":
		le = agtv.New(sys, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(1)
	}

	var adv sim.Adversary
	switch *advName {
	case "roundrobin":
		adv = sim.NewRoundRobin()
	case "random":
		adv = sim.NewRandomOblivious(*seed + 1)
	case "lockstep":
		adv = sim.NewLockstep()
	case "solofirst":
		adv = sim.NewSoloFirst()
	default:
		fmt.Fprintf(os.Stderr, "unknown adversary %q\n", *advName)
		os.Exit(1)
	}

	fmt.Printf("trace: %s, k=%d, n=%d, adversary=%s, seed=%d\n", *algo, *k, *n, *advName, *seed)
	fmt.Printf("%4s  %-4s %-5s %-6s\n", "time", "proc", "op", "target")

	won := make([]bool, *k)
	limited := &sim.Func{Vis: sim.VisibilityAdaptive, Pick: func(v sim.View) int {
		if steps >= *maxStep {
			return -1
		}
		return adv.Next(v)
	}}
	res := sys.Run(limited, func(h shm.Handle) {
		won[h.ID()] = le.Elect(h)
	})

	fmt.Println()
	for pid := 0; pid < *k; pid++ {
		status := "lost"
		if won[pid] {
			status = "WON"
		}
		if !res.Finished[pid] {
			status = "cut off"
		}
		fmt.Printf("p%-3d %-8s %3d steps  %3d coins\n", pid, status, res.Steps[pid], sys.CoinsOf(pid))
	}
	fmt.Printf("\ntotal steps %d, registers %d, touched %d\n",
		res.TotalSteps, sys.RegisterCount(), sys.TouchedRegisters())
}
