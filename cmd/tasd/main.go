// Command tasd is the TCP lock and leader-election daemon built on the
// repository's randomized test-and-set arena: named fenced locks
// (ACQUIRE/TRYACQUIRE/RELEASE, with lease TTLs and strictly monotone
// fencing tokens), named epoch'd leader elections
// (ELECT/ELECTEPOCH/ELECTRESET), and a STATS counter snapshot, served
// over the compact binary protocol of internal/wire (v2, with HELLO
// version negotiation — v1 clients keep working) to any number of
// tasclient connections.
//
// Usage:
//
//	tasd [-addr 127.0.0.1:7420] [-max-clients 64] [-algo combined]
//	     [-shards S] [-prealloc P] [-seed S] [-lease-sweep 5ms]
//	     [-max-idle 0] [-evict-interval 0]
//	     [-max-inflight 0] [-max-waiters 0] [-write-timeout 0]
//	     [-drain-timeout 10s] [-quiet]
//
// Every connected client owns one process slot of the arena, so the
// paper's per-process wait-freedom guarantees carry over per client. A
// client that hangs while holding a leased lock is expired within
// TTL + lease-sweep: waiters proceed on a force-installed round and the
// zombie's release answers FENCED. Under overload (protocol v3) the
// daemon degrades gracefully instead of queueing without bound:
// -max-inflight caps blocked ACQUIREs server-wide and -max-waiters caps
// them per lock — excess requests are shed with a BUSY answer carrying
// a retry-after hint — while -write-timeout evicts clients that stop
// draining their responses. SIGTERM or SIGINT starts a graceful
// drain: the listener closes, in-flight request batches finish, held
// locks of departing clients are recovered, and the process exits 0 —
// or exits 1 if the drain timeout forces connections closed.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	randtas "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7420", "TCP listen address")
		maxClients   = flag.Int("max-clients", 64, "maximum simultaneous clients (process slots)")
		algo         = flag.String("algo", "combined", "TAS algorithm: combined, logstar, sifting, adaptive-sifting, ratrace, ratrace-original, agtv")
		shards       = flag.Int("shards", 0, "arena shards (0 = default)")
		prealloc     = flag.Int("prealloc", 0, "preallocated slots per shard (0 = default)")
		seed         = flag.Int64("seed", 0, "deterministic coin seed (0 = per-run random)")
		leaseSweep   = flag.Duration("lease-sweep", 5*time.Millisecond, "lease sweeper interval — a lease is enforced within TTL + this")
		maxIdle      = flag.Duration("max-idle", 0, "evict named locks idle this long (0 = never evict)")
		evictTick    = flag.Duration("evict-interval", 0, "eviction pass cadence (0 = every max-idle)")
		maxInflight  = flag.Int("max-inflight", 0, "shed blocked ACQUIREs beyond this many server-wide (0 = unbounded)")
		maxWaiters   = flag.Int("max-waiters", 0, "shed blocked ACQUIREs beyond this many per lock (0 = unbounded)")
		writeTimeout = flag.Duration("write-timeout", 0, "evict a client whose response writes stall this long (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget on SIGTERM/SIGINT")
		quiet        = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Parse()

	algorithm, err := randtas.ParseAlgorithm(*algo)
	if err != nil {
		log.Fatalf("tasd: %v", err)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	srv, err := server.New(server.Config{
		Addr:          *addr,
		MaxClients:    *maxClients,
		Algorithm:     algorithm,
		Seed:          *seed,
		ArenaShards:   *shards,
		Prealloc:      *prealloc,
		LeaseSweep:    *leaseSweep,
		MaxIdle:       *maxIdle,
		EvictInterval: *evictTick,
		MaxInflight:   *maxInflight,
		MaxWaiters:    *maxWaiters,
		WriteTimeout:  *writeTimeout,
		Logf:          logf,
	})
	if err != nil {
		log.Fatalf("tasd: %v", err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatalf("tasd: %v", err)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		log.Fatalf("tasd: serve: %v", err)
	case sig := <-sigs:
		logf("tasd: %v — draining (budget %v)", sig, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("tasd: drain incomplete, connections force-closed: %v", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil {
		log.Fatalf("tasd: serve: %v", err)
	}
}
