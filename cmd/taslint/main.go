// Command taslint runs the repository's invariant analyzers (see
// internal/lint) over Go packages. It speaks go vet's -vettool
// protocol, so the canonical invocation — the one CI gates on — is:
//
//	go build -o taslint ./cmd/taslint
//	go vet -vettool=$PWD/taslint ./...
//
// As a convenience, invoking it with package patterns re-executes
// `go vet -vettool=<self> <patterns>`, so `taslint ./...` works too
// and exercises exactly the same code path (the build system loads and
// type-checks the packages; taslint analyzes one compilation unit per
// invocation, test files included).
//
// Exit status: 0 when every analyzer is clean, 1 on findings or errors.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Protocol handshakes from go vet.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			lint.PrintVersion(os.Stdout, "taslint")
			return
		case a == "-flags" || a == "--flags":
			lint.PrintFlags(os.Stdout)
			return
		}
	}

	// One compilation unit, described by a vet config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := lint.RunUnitFile(args[0], os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taslint: %v\n", err)
			os.Exit(1)
		}
		if n > 0 {
			os.Exit(1)
		}
		return
	}

	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, `usage:
  taslint ./...                     lint packages (runs go vet -vettool=taslint)
  go vet -vettool=$(which taslint)  use directly as a vettool
  taslint help                      list analyzers`)
		os.Exit(2)
	}

	if args[0] == "help" {
		for _, a := range lint.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	// Standalone mode: hand the loading problem to the build system by
	// re-invoking go vet with ourselves as the vettool. This keeps one
	// single analysis path (the .cfg branch above) for CI, tests and
	// interactive runs alike.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "taslint: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "taslint: %v\n", err)
		os.Exit(1)
	}
}
