// Benchmarks regenerating the experiment series of EXPERIMENTS.md, one per
// table/claim. Simulator benches report steps/op (the paper's measure —
// wall time on the simulator is not the quantity of interest); concurrent
// benches report real throughput.
//
// Run: go test -bench=. -benchmem .
package randtas

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/combiner"
	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/groupelect"
	"repro/internal/lowerbound"
	"repro/internal/ratrace"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tas"
	"repro/internal/twoproc"
)

// benchLE runs one leader election per iteration at contention k and
// reports the mean max-steps metric (the paper's expected individual step
// complexity). The System and elector are constructed once and
// Reset-recycled per iteration, as the harness trial driver does.
func benchLE(b *testing.B, k, n int, mk func(s shm.Space) interface {
	Elect(h shm.Handle) bool
}, mkAdv func(seed int64) sim.Adversary) {
	b.Helper()
	sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
	defer sys.Release()
	le := mk(sys)
	body := func(h shm.Handle) {
		le.Elect(h)
	}
	var res sim.Result
	totalMax := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset(int64(i))
		sys.RunInto(mkAdv(int64(i)+977), body, &res)
		totalMax += res.MaxSteps
	}
	b.ReportMetric(float64(totalMax)/float64(b.N), "maxsteps/op")
}

func randomAdv(seed int64) sim.Adversary { return sim.NewRandomOblivious(seed) }

// E1 — Lemma 2.2: Figure 1 group election performance parameter.
func BenchmarkGroupElectFig1(b *testing.B) {
	for _, k := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
			defer sys.Release()
			ge := groupelect.NewFig1(sys, 4096)
			elected := 0
			body := func(h shm.Handle) {
				if ge.Elect(h) {
					elected++
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Reset(int64(i))
				sys.Run(sim.NewRandomOblivious(int64(i)), body)
			}
			b.ReportMetric(float64(elected)/float64(b.N), "elected/op")
		})
	}
}

// E2 — Theorem 2.3: the O(log* k) chain.
func BenchmarkLogStarLE(b *testing.B) {
	for _, k := range []int{8, 64, 512, 4096} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchLE(b, k, 4096, func(s shm.Space) interface {
				Elect(h shm.Handle) bool
			} {
				return core.NewLogStar(s, 4096)
			}, randomAdv)
		})
	}
}

// E3 — Section 2.3 / Theorem 2.4: sifting chains.
func BenchmarkSiftingLE(b *testing.B) {
	for _, k := range []int{8, 512} {
		b.Run(fmt.Sprintf("nonadaptive/k=%d", k), func(b *testing.B) {
			benchLE(b, k, 4096, func(s shm.Space) interface {
				Elect(h shm.Handle) bool
			} {
				return core.NewSifting(s, 4096)
			}, randomAdv)
		})
		b.Run(fmt.Sprintf("adaptive/k=%d", k), func(b *testing.B) {
			benchLE(b, k, 4096, func(s shm.Space) interface {
				Elect(h shm.Handle) bool
			} {
				return core.NewAdaptiveSifting(s, 4096)
			}, randomAdv)
		})
	}
}

// E4 — Section 3: space-efficient RatRace under the adaptive lockstep
// schedule, plus the space census of both variants.
func BenchmarkRatRaceSE(b *testing.B) {
	for _, k := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchLE(b, k, 1024, func(s shm.Space) interface {
				Elect(h shm.Handle) bool
			} {
				return ratrace.NewSpaceEfficient(s, 1024)
			}, func(int64) sim.Adversary { return sim.NewLockstep() })
		})
	}
}

func BenchmarkRatRaceSpace(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("original/n=%d", n), func(b *testing.B) {
			regs := 0
			for i := 0; i < b.N; i++ {
				sys := sim.NewSystem(sim.Config{N: 1, Seed: 1})
				ratrace.NewOriginal(sys, n)
				regs = sys.RegisterCount()
			}
			b.ReportMetric(float64(regs), "registers")
		})
		b.Run(fmt.Sprintf("modified/n=%d", n), func(b *testing.B) {
			regs := 0
			for i := 0; i < b.N; i++ {
				sys := sim.NewSystem(sim.Config{N: 1, Seed: 1})
				ratrace.NewSpaceEfficient(sys, n)
				regs = sys.RegisterCount()
			}
			b.ReportMetric(float64(regs), "registers")
		})
	}
}

// E5 — Theorem 4.1: the combined algorithm under the adaptive attack that
// breaks the plain chain.
func BenchmarkCombinerAttack(b *testing.B) {
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("naive/k=%d", k), func(b *testing.B) {
			sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
			defer sys.Release()
			chain := core.NewLogStar(sys, k)
			body := func(h shm.Handle) {
				chain.Elect(h)
			}
			var res sim.Result
			totalMax := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Reset(int64(i))
				sys.RunInto(sim.NewAscendingLocation(chain.IsArrayRegister), body, &res)
				totalMax += res.MaxSteps
			}
			b.ReportMetric(float64(totalMax)/float64(b.N), "maxsteps/op")
		})
		b.Run(fmt.Sprintf("combined/k=%d", k), func(b *testing.B) {
			sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
			defer sys.Release()
			rr := ratrace.NewSpaceEfficient(sys, k)
			chain := core.NewLogStar(sys, k)
			comb := combiner.New(sys, rr, chain)
			body := func(h shm.Handle) {
				comb.Elect(h)
			}
			var res sim.Result
			totalMax := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Reset(int64(i))
				sys.RunInto(sim.NewAscendingLocation(chain.IsArrayRegister), body, &res)
				totalMax += res.MaxSteps
			}
			b.ReportMetric(float64(totalMax)/float64(b.N), "maxsteps/op")
		})
	}
}

// E6 — Theorem 5.1: one full covering-adversary construction per iteration.
func BenchmarkCoveringAdversary(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			covered := 0
			for i := 0; i < b.N; i++ {
				res := lowerbound.RunCovering(n, int64(i)+1, func(s shm.Space) func(shm.Handle) {
					le := core.NewLogStar(s, n)
					return func(h shm.Handle) { le.Elect(h) }
				})
				covered = res.CoveredRegisters
			}
			b.ReportMetric(float64(covered), "covered-registers")
		})
	}
}

// E7 — Theorem 6.1: the schedule-enumeration experiment.
func BenchmarkTwoProcLowerBound(b *testing.B) {
	for _, t := range []int{2, 4} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			var maxProb float64
			for i := 0; i < b.N; i++ {
				p := lowerbound.TwoProcessTimeBound(t, 40, int64(i)+1)
				maxProb = p.MaxProb
			}
			b.ReportMetric(maxProb, "max-prob")
		})
	}
}

// E8 — Claim 3.2: leaf-occupancy tail sampling.
func BenchmarkLeafOccupancy(b *testing.B) {
	const n = 256
	height := 8
	threshold := 4 * height
	rng := rand.New(rand.NewSource(11))
	exceed := 0
	for i := 0; i < b.N; i++ {
		blocks := make([]int, n/height+1)
		for ball := 0; ball < n; ball++ {
			blocks[rng.Intn(n)/height]++
		}
		for _, c := range blocks {
			if c > threshold {
				exceed++
				break
			}
		}
	}
	b.ReportMetric(float64(exceed)/float64(b.N), "overflow-frac")
}

// E9 — the adversary-separation attacks.
func BenchmarkAdversarySeparation(b *testing.B) {
	const k = 64
	b.Run("fig1-ascending", func(b *testing.B) {
		sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
		defer sys.Release()
		ge := groupelect.NewFig1(sys, 1024)
		ids := map[int]bool{}
		for _, id := range ge.ArrayRegisterIDs() {
			ids[id] = true
		}
		elected := 0
		body := func(h shm.Handle) {
			if ge.Elect(h) {
				elected++
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Reset(int64(i))
			sys.Run(sim.NewAscendingLocation(func(r int) bool { return ids[r] }), body)
		}
		b.ReportMetric(float64(elected)/float64(b.N), "elected/op")
	})
	b.Run("sifter-readersfirst", func(b *testing.B) {
		sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
		defer sys.Release()
		ge := groupelect.NewSifter(sys, groupelect.SifterPi(k))
		elected := 0
		body := func(h shm.Handle) {
			if ge.Elect(h) {
				elected++
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Reset(int64(i))
			sys.Run(sim.NewReadersFirst(), body)
		}
		b.ReportMetric(float64(elected)/float64(b.N), "elected/op")
	})
}

// E11 — the two-process building block.
func BenchmarkTwoProcLE(b *testing.B) {
	sys := sim.NewSystem(sim.Config{N: 2, Seed: 0, Reuse: true})
	defer sys.Release()
	le := twoproc.New(sys)
	body := func(h shm.Handle) {
		le.Elect(h, h.ID())
	}
	var res sim.Result
	totalMax := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset(int64(i))
		sys.RunInto(sim.NewRandomOblivious(int64(i)), body, &res)
		totalMax += res.MaxSteps
	}
	b.ReportMetric(float64(totalMax)/float64(b.N), "maxsteps/op")
}

// E12 — the TAS-from-LE transformation overhead.
func BenchmarkTASFromLE(b *testing.B) {
	const k = 64
	sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
	defer sys.Release()
	obj := tas.New(sys, core.NewLogStar(sys, k))
	body := func(h shm.Handle) {
		obj.TAS(h)
	}
	var res sim.Result
	totalMax := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset(int64(i))
		sys.RunInto(sim.NewRandomOblivious(int64(i)), body, &res)
		totalMax += res.MaxSteps
	}
	b.ReportMetric(float64(totalMax)/float64(b.N), "maxsteps/op")
}

// E13 — real-backend throughput: the paper's TAS versus a plain
// CompareAndSwap TAS (the primitive the paper's model does not allow).
func BenchmarkConcurrentTAS(b *testing.B) {
	for _, algo := range []Algorithm{Combined, LogStar, RatRace, AGTV} {
		b.Run(algo.String(), func(b *testing.B) {
			const procs = 8
			for i := 0; i < b.N; i++ {
				obj, err := NewTAS(Options{N: procs, Algorithm: algo, Seed: int64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				var zeros int32
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(tp *TASProc) {
						defer wg.Done()
						if tp.TAS() == 0 {
							atomic.AddInt32(&zeros, 1)
						}
					}(obj.Proc(p))
				}
				wg.Wait()
				if zeros != 1 {
					b.Fatalf("%d winners", zeros)
				}
			}
		})
	}
}

func BenchmarkCASBaselineTAS(b *testing.B) {
	const procs = 8
	for i := 0; i < b.N; i++ {
		var bit int32
		var wg sync.WaitGroup
		var zeros int32
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if atomic.CompareAndSwapInt32(&bit, 0, 1) {
					atomic.AddInt32(&zeros, 1)
				}
			}()
		}
		wg.Wait()
		if zeros != 1 {
			b.Fatalf("%d winners", zeros)
		}
	}
}

// Ablation — the simulator trial engine before/after (PR 3): one full
// harness trial per iteration on the representative cell (log* chain,
// n=1024, k=16, random-oblivious schedule). "fresh" pays the pre-PR driver
// shape — a new System and a full algorithm construction per trial —
// while "pooled" Reset-recycles one System as harness.Run's workers do.
func BenchmarkSimTrial(b *testing.B) {
	const n, k = 1024, 16
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := sim.NewSystem(sim.Config{N: k, Seed: int64(i)})
			le := core.NewLogStar(sys, n)
			sys.Run(sim.NewRandomOblivious(int64(i)+977), func(h shm.Handle) {
				le.Elect(h)
			})
		}
	})
	b.Run("pooled", func(b *testing.B) {
		sys := sim.NewSystem(sim.Config{N: k, Seed: 0, Reuse: true})
		defer sys.Release()
		le := core.NewLogStar(sys, n)
		body := func(h shm.Handle) {
			le.Elect(h)
		}
		var res sim.Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Reset(int64(i))
			sys.RunInto(sim.NewRandomOblivious(int64(i)+977), body, &res)
		}
	})
}

// Ablation — the simulator's step-handshake overhead (DESIGN.md).
func BenchmarkSimStepOverhead(b *testing.B) {
	sys := sim.NewSystem(sim.Config{N: 1, Seed: 1})
	r := sys.NewRegister(0)
	steps := b.N
	sys.Start(func(h shm.Handle) {
		for i := 0; i < steps; i++ {
			h.Write(r, 1)
		}
	})
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(0)
	}
}

// E14 — the arena subsystem: sustained Lock/Unlock traffic on the
// reusable TAS-chained Mutex. ReportAllocs demonstrates the arena's
// amortized O(1) allocations per operation: slots (with their O(n)
// register footprints) are recycled, so steady state allocates only the
// per-round bookkeeping, never a fresh TAS object.
func BenchmarkMutex(b *testing.B) {
	for _, algo := range []Algorithm{Combined, RatRace, AGTV} {
		b.Run(algo.String(), func(b *testing.B) {
			benchMutexWorkload(b, algo, false)
		})
	}
}

// benchMutexWorkload is the shared Lock/Unlock workload of BenchmarkMutex
// and BenchmarkMutexBaseline, so the A/B pair can never drift apart.
func benchMutexWorkload(b *testing.B, algo Algorithm, noFastPath bool) {
	n := 2 * runtime.GOMAXPROCS(0) // ids for however many workers RunParallel spawns
	m, err := NewMutex(ArenaOptions{Options: Options{N: n, Algorithm: algo, Seed: 1}, NoFastPath: noFastPath})
	if err != nil {
		b.Fatal(err)
	}
	var nextID atomic.Int64
	counter := 0 // guarded by m; validates exclusion during the bench
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(nextID.Add(1)) - 1
		if id >= n {
			b.Errorf("more parallel workers than proc ids (%d)", n)
			return
		}
		p := m.Proc(id)
		for pb.Next() {
			tok, err := p.Lock(context.Background())
			if err != nil {
				b.Error(err)
				return
			}
			counter++
			if err := p.Unlock(tok); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if counter != b.N {
		b.Fatalf("counter = %d, want %d", counter, b.N)
	}
	st := m.Stats()
	b.ReportMetric(float64(st.Contended)/float64(b.N), "lostTAS/op")
	b.ReportMetric(float64(m.m.Arena().TotalStats().Slots), "slots")
}

// E14a — the same workload as BenchmarkMutex on the portable baseline
// paths (ArenaOptions.NoFastPath: interface-dispatched steps, no
// uncontended doorway, full-footprint resets). The gap between this and
// BenchmarkMutex is the fast-path overhaul, measurable inside one
// binary; cmd/tasbench -mode=compare reports the same A/B as JSON.
func BenchmarkMutexBaseline(b *testing.B) {
	for _, algo := range []Algorithm{Combined, RatRace, AGTV} {
		b.Run(algo.String(), func(b *testing.B) {
			benchMutexWorkload(b, algo, true)
		})
	}
}

// Register-bank recycling in isolation: a 512-register space with 8
// registers touched per round. The dirty-window Reset pays O(touched);
// FullReset pays O(footprint) — the before/after of tentpole item (4).
func BenchmarkSpaceReset(b *testing.B) {
	const regs, touched = 512, 8
	mkSpace := func() (*concurrent.Space, []shm.Register) {
		s := concurrent.NewSpace()
		rs := make([]shm.Register, regs)
		for i := range rs {
			rs[i] = s.NewRegister(0)
		}
		s.Seal()
		return s, rs
	}
	b.Run("dirty-window", func(b *testing.B) {
		s, rs := mkSpace()
		h := concurrent.NewHandle(0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < touched; j++ {
				h.Write(rs[(i*7+j*61)%regs], 1)
			}
			s.Reset()
		}
	})
	b.Run("full", func(b *testing.B) {
		s, rs := mkSpace()
		h := concurrent.NewHandle(0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < touched; j++ {
				h.Write(rs[(i*7+j*61)%regs], 1)
			}
			s.FullReset()
		}
	})
}

// E14b — the arena pool in isolation: Get/Put must be O(1) and
// allocation-free once the pool is warm.
func BenchmarkArenaGetPut(b *testing.B) {
	a, err := NewArena(ArenaOptions{Options: Options{N: 8, Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		hint := int(time.Now().UnixNano()) // static per-worker shard hint
		for pb.Next() {
			s := a.a.Get(hint)
			a.a.Put(s)
		}
	})
	b.StopTimer()
	if misses := a.Stats().Misses; misses > uint64(2*runtime.GOMAXPROCS(0)) {
		b.Fatalf("%d construction misses on a warm pool", misses)
	}
}
